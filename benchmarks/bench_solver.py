"""Solver-kernel benchmark: optimised kernel vs the preserved seed.

Measures the constraint-solver overhaul (online cycle elimination,
interned pointer keys, coalescing worklist — see ``docs/performance.md``)
against :class:`repro.pointer.SeedPointerAnalysis`, the seed solver kept
verbatim with its original dataclass keys.  Every program is also
checked differentially: both solvers must reach the identical least
fixpoint (compared through canonical string forms, since the two kernels
use different key families).

Two entry points:

* **script** — ``PYTHONPATH=src python benchmarks/bench_solver.py``
  runs the full suites, prints a summary, and writes the machine-
  readable artifact ``BENCH_solver.json`` at the repository root.
  ``--quick`` trims each suite for CI smoke runs; ``--out`` redirects
  the artifact; ``--check`` exits non-zero unless the micro and
  securibench reductions meet the 25% bar.
* **pytest-benchmark** — ``pytest benchmarks/bench_solver.py`` measures
  the optimised kernel and asserts differential equivalence.

``--ledger FILE`` additionally appends one ``kind="bench"`` run-ledger
record (:mod:`repro.obs.ledger`): per-suite optimized walls as the
"phases", the deterministic work counters, and the host fingerprint.
The regression sentinel (``benchmarks/regression.py``) diffs the newest
record against the accumulated history.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script mode
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.micro import MICRO_CASES, MOTIVATING, cyclic_stress
from repro.bench.securibench import CASES
from repro.bench.harness import write_bench_json
from repro.bounds import Budget
from repro.obs.ledger import (append_record, corpus_hash, make_record,
                              sha256_fingerprint)
from repro.modeling import default_natives, prepare
from repro.obs import Observability
from repro.pointer import (ChaoticOrder, ContextPolicy, PointerAnalysis,
                           SeedPointerAnalysis)
from repro.pointer.heapgraph import HeapGraph
from repro.sdg.hsdg import DirectEdges
from repro.sdg.noheap import NoHeapSDG
from repro.taint import TaintEngine, default_rules

REPEATS = 5
TARGET_REDUCTION = 25.0         # acceptance bar, percent
PARALLEL_JOBS = 4               # fan-out measured for the taint sweep


def suite_sources(quick: bool = False) -> Dict[str, List[List[str]]]:
    """Suite name -> list of programs (each a list of sources)."""
    micro = [[MOTIVATING]] + [[src] for src, _ in MICRO_CASES.values()]
    securibench = [[src] for cat in CASES.values()
                   for src, _ in cat.values()]
    cyclic = [[cyclic_stress(12, 30)], [cyclic_stress(16, 60)],
              [cyclic_stress(24, 48, depth=8)]]
    if quick:
        micro, securibench, cyclic = micro[:6], securibench[:6], cyclic[:1]
    return {"micro": micro, "securibench": securibench, "cyclic": cyclic}


def run_solver(cls, prepared, repeats: int = REPEATS, obs=None):
    """Best-of-``repeats`` solve; returns (solver, best_seconds).

    ``obs`` (an :class:`Observability` bundle) is only forwarded when
    given — the preserved seed solver predates the observability layer
    and takes no such keyword.
    """
    kwargs = {"obs": obs} if obs is not None else {}
    best = None
    for _ in range(repeats):
        pa = cls(prepared.program, ContextPolicy(),
                 natives=default_natives(), order=ChaoticOrder(),
                 **kwargs)
        t0 = time.perf_counter()
        pa.solve()
        t = time.perf_counter() - t0
        best = t if best is None else min(best, t)
    return pa, best


def canonical(pa) -> Dict[str, frozenset]:
    """Key-family-independent form of a points-to solution."""
    out: Dict[str, frozenset] = {}
    for key, pts in pa.iter_pts():
        if pts:
            out[str(key)] = frozenset(str(ik) for ik in pts)
    return out


def bench_suite(programs: List[List[str]],
                repeats: int = REPEATS) -> Dict[str, Dict[str, float]]:
    """Run both kernels over a suite; returns the per-solver metrics.

    One :class:`Observability` registry is shared across the suite's
    optimised runs so the artifact carries the aggregate counters,
    worklist-depth peaks, and points-to-set-size percentiles under the
    ``metrics_registry`` key.
    """
    prepareds = [prepare(srcs) for srcs in programs]
    obs = Observability()
    metrics = {
        solver: {"wall_s": 0.0, "nodes": 0, "edges": 0, "propagations": 0}
        for solver in ("seed", "optimized")
    }
    opt_extra = {"cycles_collapsed": 0, "keys_merged": 0,
                 "coalesced_deltas": 0, "scc_runs": 0}
    degraded_runs = 0
    for prepared in prepareds:
        seed, seed_t = run_solver(SeedPointerAnalysis, prepared, repeats)
        opt, opt_t = run_solver(PointerAnalysis, prepared, repeats,
                                obs=obs)
        if getattr(opt, "truncated", False) or \
                getattr(seed, "truncated", False):
            degraded_runs += 1
        if canonical(seed) != canonical(opt):
            raise AssertionError(
                "differential mismatch: optimised solver diverged from "
                "the seed fixpoint")
        for name, pa, t in (("seed", seed, seed_t),
                            ("optimized", opt, opt_t)):
            m = metrics[name]
            m["wall_s"] += t
            m["nodes"] += sum(1 for _ in pa.iter_pts())
            m["edges"] += pa.stats["edges"]
            m["propagations"] += pa.stats["propagations"]
        for stat in opt_extra:
            opt_extra[stat] += opt.stats[stat]
    metrics["optimized"].update(opt_extra)
    # Counters aggregate over programs x repeats; the timer histograms
    # get one sample per solve, which is what makes p50/p95 meaningful.
    metrics["metrics_registry"] = obs.metrics.snapshot()
    # Resilience record (docs/robustness.md): numbers from a degraded
    # (budget/deadline-truncated) solve are not comparable to complete
    # ones, so the artifact says which kind this suite produced.
    metrics["completeness"] = ("complete" if degraded_runs == 0
                               else "partial-budget")
    metrics["degraded_runs"] = degraded_runs
    seed_wall = metrics["seed"]["wall_s"]
    metrics["reduction_percent"] = round(
        100.0 * (seed_wall - metrics["optimized"]["wall_s"]) / seed_wall, 1)
    metrics["propagations_delta"] = (metrics["seed"]["propagations"] -
                                     metrics["optimized"]["propagations"])
    for solver in ("seed", "optimized"):
        metrics[solver]["wall_s"] = round(metrics[solver]["wall_s"], 4)
    return metrics


def bench_parallel_taint(repeats: int = 3,
                         jobs: int = PARALLEL_JOBS) -> Dict[str, object]:
    """Serial vs parallel per-rule taint sweep over securibench.

    One pointer solve and one SDG are shared; only the engine sweep is
    timed (best of ``repeats``).  The flows must come back identical —
    that contract, not the wall clock, is the parallel sweep's headline
    guarantee: on a single-core host ``jobs=N`` pays fork overhead and
    the artifact records that honestly.
    """
    sources = [src for cat in CASES.values() for src, _ in cat.values()]
    prepared = prepare(sources)
    analysis, _ = run_solver(PointerAnalysis, prepared, repeats=1)
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    direct = DirectEdges(sdg, analysis)
    heap = HeapGraph(analysis)

    def sweep(n: int):
        best, result = None, None
        for _ in range(repeats):
            engine = TaintEngine(sdg, direct, heap, default_rules(),
                                 Budget(), jobs=n)
            t0 = time.perf_counter()
            result = engine.run()
            t = time.perf_counter() - t0
            best = t if best is None else min(best, t)
        return result, best

    serial, serial_t = sweep(1)
    parallel, parallel_t = sweep(jobs)
    identical = [f.sort_key() for f in serial.flows] == \
        [f.sort_key() for f in parallel.flows]
    if not identical:
        raise AssertionError(
            "parallel sweep diverged from the serial reference")
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    return {
        "programs": len(sources),
        "rules": len(list(default_rules())),
        "flows": len(serial.flows),
        "cores": cores,
        "jobs": jobs,
        "jobs1_wall_s": round(serial_t, 4),
        f"jobs{jobs}_wall_s": round(parallel_t, 4),
        "speedup": round(serial_t / parallel_t, 2),
        "reports_identical": identical,
    }


def run_bench(quick: bool = False,
              repeats: int = REPEATS) -> Dict[str, Dict]:
    payload: Dict[str, Dict] = {"suites": {}}
    for name, programs in suite_sources(quick).items():
        payload["suites"][name] = bench_suite(programs, repeats)
        payload["suites"][name]["programs"] = len(programs)
    payload["parallel_taint"] = bench_parallel_taint(
        repeats=1 if quick else 3)
    payload["meta"] = {
        "quick": quick,
        "repeats": repeats,
        "target_reduction_percent": TARGET_REDUCTION,
        "python": "%d.%d" % sys.version_info[:2],
    }
    return payload


def ledger_record(payload: Dict, quick: bool, repeats: int,
                  commit: str = None) -> Dict:
    """One ``kind="bench"`` run-ledger record for a suite sweep.

    The "phases" are the per-suite optimized walls (plus the serial
    parallel-taint sweep wall), so the sentinel names the regressed
    *suite*; the counters are the deterministic work measures, gated
    regardless of host.
    """
    phases: Dict[str, float] = {}
    counters: Dict[str, float] = {}
    complete = True
    for name, m in payload["suites"].items():
        phases[f"suite.{name}"] = m["optimized"]["wall_s"]
        counters[f"{name}.propagations"] = \
            m["optimized"]["propagations"]
        counters[f"{name}.edges"] = m["optimized"]["edges"]
        complete = complete and m["completeness"] == "complete"
    par = payload.get("parallel_taint")
    if par:
        phases["taint.serial_sweep"] = par["jobs1_wall_s"]
        counters["taint.flows"] = par["flows"]
    sources = [src for programs in suite_sources(quick).values()
               for srcs in programs for src in srcs]
    return make_record(
        kind="bench",
        config_name="bench_solver" + ("-quick" if quick else ""),
        fingerprint=sha256_fingerprint({"quick": quick,
                                        "repeats": repeats}),
        corpus={"hash": corpus_hash(sources), "files": len(sources)},
        phases=phases,
        seconds=sum(phases.values()),
        counters=counters,
        completeness="complete" if complete else "partial-budget",
        commit=commit,
    )


def format_summary(payload: Dict) -> str:
    lines = [f"{'suite':<12}{'programs':>9}{'seed(s)':>9}{'opt(s)':>8}"
             f"{'reduction':>11}{'props seed':>12}{'props opt':>11}"
             f"{'merged':>8}"]
    for name, m in payload["suites"].items():
        lines.append(
            f"{name:<12}{m['programs']:>9}{m['seed']['wall_s']:>9.3f}"
            f"{m['optimized']['wall_s']:>8.3f}"
            f"{m['reduction_percent']:>10.1f}%"
            f"{m['seed']['propagations']:>12}"
            f"{m['optimized']['propagations']:>11}"
            f"{m['optimized']['keys_merged']:>8}")
    par = payload.get("parallel_taint")
    if par:
        jobs_wall = par["jobs%d_wall_s" % par["jobs"]]
        lines.append(
            f"\nparallel taint sweep (securibench, {par['rules']} rules, "
            f"{par['flows']} flows): jobs=1 {par['jobs1_wall_s']:.3f}s, "
            f"jobs={par['jobs']} {jobs_wall:.3f}s "
            f"(speedup {par['speedup']:.2f}x, reports identical: "
            f"{par['reports_identical']})")
    return "\n".join(lines)


# -- pytest-benchmark mode ----------------------------------------------------

def test_optimized_kernel_matches_seed_fixpoint():
    """Differential equivalence over a cross-section of all suites."""
    programs = suite_sources(quick=True)
    for suite in programs.values():
        for srcs in suite:
            prepared = prepare(srcs)
            seed, _ = run_solver(SeedPointerAnalysis, prepared, repeats=1)
            opt, _ = run_solver(PointerAnalysis, prepared, repeats=1)
            assert canonical(seed) == canonical(opt)


def test_solver_kernel_throughput(benchmark):
    """pytest-benchmark hook: optimised kernel over the micro suite."""
    prepareds = [prepare(srcs)
                 for srcs in suite_sources(quick=True)["micro"]]

    def solve_all():
        total = 0
        for prepared in prepareds:
            pa = PointerAnalysis(prepared.program, ContextPolicy(),
                                 natives=default_natives(),
                                 order=ChaoticOrder())
            pa.solve()
            total += pa.stats["propagations"]
        return total

    assert benchmark(solve_all) > 0


# -- script mode --------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the optimised solver kernel vs the seed.")
    parser.add_argument("--quick", action="store_true",
                        help="trimmed suites (CI smoke)")
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help=f"best-of-N timing (default {REPEATS})")
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_solver.json"),
                        help="artifact path (default: repo root)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless micro+securibench meet the "
                             f"{TARGET_REDUCTION:.0f}%% reduction bar")
    parser.add_argument("--ledger", metavar="FILE",
                        help="append one kind=\"bench\" run-ledger "
                             "record (JSONL); diff history with "
                             "benchmarks/regression.py")
    parser.add_argument("--commit", metavar="SHA",
                        help="VCS commit id recorded in the ledger "
                             "entry")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    payload = run_bench(quick=args.quick, repeats=args.repeats)
    print(format_summary(payload))
    # Keep rows other benchmarks merged into the artifact (the
    # parallel_scaling sweep writes under its own top-level key).
    target = Path(args.out)
    if target.exists():
        try:
            existing = json.loads(target.read_text(encoding="utf-8"))
        except ValueError:
            existing = {}
        for key, value in existing.items():
            payload.setdefault(key, value)
    write_bench_json(args.out, payload)
    print(f"\nwrote {args.out}")
    if args.ledger:
        append_record(args.ledger,
                      ledger_record(payload, quick=args.quick,
                                    repeats=args.repeats,
                                    commit=args.commit))
        print(f"appended ledger record to {args.ledger}")

    if args.check:
        failed = [name for name in ("micro", "securibench")
                  if payload["suites"][name]["reduction_percent"]
                  < TARGET_REDUCTION]
        if failed:
            print(f"FAIL: below {TARGET_REDUCTION:.0f}% reduction on: "
                  f"{', '.join(failed)}")
            return 1
        print(f"OK: >= {TARGET_REDUCTION:.0f}% reduction on micro and "
              f"securibench")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Table 3 — issues and running time for each algorithm on each of the
22 benchmarks.

Reproduced shapes (absolute numbers are not expected to match — our
substrate is a scaled simulator, not the authors' testbed):

* CS completes only on the six smaller benchmarks (A, BlueBlog, Friki,
  Ginp, I, SBM) and aborts on the other sixteen ("-" cells, the paper's
  out-of-memory failures);
* CI reports the most issues on every benchmark (most conservative);
* the bounded hybrid variants report no more issues than the unbounded
  one, with large drops on the biggest apps (the paper's GridSphere
  803 → 116 pattern);
* the prioritized/optimized configurations are never slower than
  unbounded on the large truncated applications.
"""

from repro.bench import (CS_COMPLETES, format_table3, run_suite)
from repro.core import TAJ, TAJConfig


def test_table3_full_matrix(benchmark, suite_apps, capsys):
    results = benchmark.pedantic(run_suite, args=(suite_apps,),
                                 rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=" * 130)
        print("Table 3: Issues and Time per Configuration (22 benchmarks"
              " x 5 configurations)")
        print("=" * 130)
        print(format_table3(results))

    apps = sorted(suite_apps)
    # CS completion pattern.
    for app in apps:
        cell = results.cell(app, "cs")
        assert cell.failed == (app not in CS_COMPLETES), app
    # CI is the most conservative configuration.
    for app in apps:
        ci = results.cell(app, "ci").issues
        unbounded = results.cell(app, "hybrid-unbounded").issues
        assert ci >= unbounded, app
    # Bounds never add issues.
    for app in apps:
        unbounded = results.cell(app, "hybrid-unbounded").issues
        for config in ("hybrid-prioritized", "hybrid-optimized"):
            assert results.cell(app, config).issues <= unbounded, app


def _run_config_on(prepared, config):
    return TAJ(config).analyze_prepared(prepared)


def test_bench_hybrid_unbounded_midsize(benchmark, prepared_cache):
    prepared = prepared_cache("SBM")
    result = benchmark(_run_config_on, prepared,
                       TAJConfig.hybrid_unbounded())
    assert not result.failed


def test_bench_hybrid_optimized_midsize(benchmark, prepared_cache):
    prepared = prepared_cache("SBM")
    result = benchmark(_run_config_on, prepared,
                       TAJConfig.hybrid_optimized())
    assert not result.failed


def test_bench_ci_midsize(benchmark, prepared_cache):
    prepared = prepared_cache("SBM")
    result = benchmark(_run_config_on, prepared, TAJConfig.ci())
    assert not result.failed


def test_bench_cs_small(benchmark, prepared_cache):
    prepared = prepared_cache("Friki")
    result = benchmark(_run_config_on, prepared, TAJConfig.cs())
    assert not result.failed


def test_bench_large_app_hybrid(benchmark, prepared_cache):
    prepared = prepared_cache("GridSphere")
    result = benchmark.pedantic(
        _run_config_on, args=(prepared, TAJConfig.hybrid_unbounded()),
        rounds=2, iterations=1)
    assert not result.failed

"""The CI regression sentinel over the committed bench ledger.

Thin entry point around :mod:`repro.obs.compare`: diff the newest
``BENCH_ledger.jsonl`` entry against the last-*k* comparable records
with noise-aware (median + MAD) thresholds, name the regressed phase
or counter, and exit non-zero under ``--check``.

    PYTHONPATH=src python benchmarks/bench_solver.py --repeats 1 \
        --ledger BENCH_ledger.jsonl        # append a fresh entry
    PYTHONPATH=src python benchmarks/regression.py --check

Wall-clock gates apply only when the newest record's host fingerprint
matches the whole baseline window (``--wall auto``, the default) — on
a CI runner with a different core count / python than the committed
baseline, only the deterministic work counters are gated.  See
``docs/observability.md``.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script mode
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.compare import main as compare_main

DEFAULT_LEDGER = REPO_ROOT / "BENCH_ledger.jsonl"


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Every flag is repro.obs.compare's; the only addition is the
    # default ledger path (the committed repo-root history).
    if not argv or argv[0].startswith("-"):
        argv.insert(0, str(DEFAULT_LEDGER))
    return compare_main(argv)


if __name__ == "__main__":
    sys.exit(main())

"""Online cycle elimination: union-find, SCC detection, solver merges."""

from repro.bounds import Budget
from repro.ir import validate_program
from repro.lang import lower_source
from repro.pointer import (ContextPolicy, PointerAnalysis, UnionFind,
                           copy_cycles)
from repro.pointer.keys import LocalKey, decode_instance_bits
from repro.pointer.contexts import EMPTY

LIB = """
library class Object { }
"""


def analyze(source, entry="Main.main/0", lcd_batch=None):
    program = lower_source(LIB + source)
    program.entrypoints.append(entry)
    from repro.ssa import program_to_ssa
    program_to_ssa(program)
    validate_program(program)
    analysis = PointerAnalysis(program, ContextPolicy(), budget=Budget())
    if lcd_batch is not None:
        analysis.LCD_BATCH = lcd_batch
    analysis.solve()
    return analysis


# -- UnionFind ---------------------------------------------------------------

def test_find_returns_unmerged_key_itself():
    uf = UnionFind()
    assert uf.find("a") == "a"
    assert uf.merged_count() == 0


def test_union_returns_winner_and_loser():
    uf = UnionFind()
    winner, loser = uf.union("a", "b")
    assert {winner, loser} == {"a", "b"}
    assert winner != loser
    assert uf.find("a") == uf.find("b") == winner
    assert uf.merged_count() == 1
    assert set(uf.merged_keys()) == {loser}


def test_union_is_idempotent():
    uf = UnionFind()
    winner, _ = uf.union("a", "b")
    again_winner, again_loser = uf.union("a", "b")
    assert again_winner == again_loser == winner
    assert uf.merged_count() == 1


def test_transitive_unions_share_one_representative():
    uf = UnionFind()
    uf.union("a", "b")
    uf.union("c", "d")
    uf.union("b", "d")
    root = uf.find("a")
    assert all(uf.find(k) == root for k in "abcd")
    assert uf.same("a", "d")
    assert not uf.same("a", "e")


def test_path_compression_flattens_chains():
    uf = UnionFind()
    for a, b in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]:
        uf.union(a, b)
    root = uf.find("e")
    # After find, every merged key points directly at the root.
    assert all(uf._parent[k] == root for k in uf.merged_keys())


# -- copy_cycles -------------------------------------------------------------

def _find(key):
    return key


def test_detects_simple_cycle():
    succs = {"a": ["b"], "b": ["c"], "c": ["a"]}
    [comp] = copy_cycles(succs, _find)
    assert set(comp) == {"a", "b", "c"}


def test_ignores_acyclic_graph_and_self_loops():
    succs = {"a": ["b", "a"], "b": ["c"], "c": []}
    assert copy_cycles(succs, _find) == []


def test_finds_multiple_disjoint_cycles():
    succs = {"a": ["b"], "b": ["a"], "c": ["d"], "d": ["c"], "e": ["a"]}
    comps = {frozenset(c) for c in copy_cycles(succs, _find)}
    assert comps == {frozenset("ab"), frozenset("cd")}


def test_roots_restrict_the_sweep():
    succs = {"a": ["b"], "b": ["a"], "c": ["d"], "d": ["c"]}
    comps = {frozenset(c) for c in copy_cycles(succs, _find, roots=["a"])}
    assert comps == {frozenset("ab")}


def test_stale_successors_are_normalized():
    uf = UnionFind()
    winner, loser = uf.union("b1", "b2")
    # "a" still lists the merged-away alias; find() must normalize it.
    succs = {"a": [loser], winner: ["a"]}
    [comp] = copy_cycles(succs, uf.find)
    assert set(comp) == {"a", winner}


# -- solver integration ------------------------------------------------------

CYCLE_SOURCE = """
class A { }
class Main {
  static void main() {
    Object a = new A();
    Object b = a;
    Object c = b;
    for (int i = 0; i < 3; i++) {
      a = c;
      b = a;
      c = b;
    }
  }
}
"""


def test_loop_carried_copy_cycle_is_collapsed():
    pa = analyze(CYCLE_SOURCE, lcd_batch=1)
    assert pa.stats["cycles_collapsed"] >= 1
    assert pa.stats["keys_merged"] >= 2
    # Merged-away keys resolve to representatives outside their own set
    # (a representative is never itself merged away)...
    merged = list(pa._scc.merged_keys())
    assert len(merged) >= 2
    reps = {pa.representative(k) for k in merged}
    assert reps.isdisjoint(merged)
    # ...and every key still reports the full points-to set.
    for key in merged:
        assert pa.points_to(key) == pa.points_to(pa.representative(key))


def test_collapse_preserves_points_to_of_all_locals():
    """Eager mid-drain collapse (batch=1) and the lazy solve()-end
    residual flush (batch too large to ever fire mid-drain) must reach
    the identical fixpoint."""
    collapsed = analyze(CYCLE_SOURCE, lcd_batch=1)
    plain = analyze(CYCLE_SOURCE, lcd_batch=10 ** 9)
    canon = lambda pa: {str(k): frozenset(str(i) for i in pts)
                        for k, pts in pa.iter_pts() if pts}
    assert canon(collapsed) == canon(plain)


def test_points_to_returns_immutable_copy():
    pa = analyze(CYCLE_SOURCE, lcd_batch=1)
    key = LocalKey("Main.main/0", EMPTY, "a.1")
    view = pa.points_to(key)
    assert isinstance(view, frozenset)
    assert view
    # The decoded view must agree with the internal bitset (shared by the
    # whole collapsed cycle), and the bitset itself must not leak.
    internal = pa.pts.get(pa.representative(key))
    assert isinstance(internal, int)
    assert view == frozenset(decode_instance_bits(internal))
    assert pa.points_to_bits(key) == internal


def test_merged_keys_still_enumerate_via_iter_pts():
    pa = analyze(CYCLE_SOURCE, lcd_batch=1)
    seen = {str(k) for k, pts in pa.iter_pts() if pts}
    for var in ("a.1", "b.1", "c.1"):
        assert f"Main.main/0<ε>::{var}" in seen


def test_cycle_statistics_are_exposed():
    pa = analyze(CYCLE_SOURCE, lcd_batch=1)
    for stat in ("cycles_collapsed", "keys_merged", "coalesced_deltas",
                 "scc_runs", "propagations", "edges"):
        assert stat in pa.stats
    assert pa.stats["scc_runs"] >= 1
    assert set(pa.phase_seconds) == {"constraint_adding",
                                     "constraint_solving"}

"""Heap-graph tests (paper §4.1.1)."""

from repro.pointer import HeapGraph
from tests.pointer.test_solver import analyze


def build():
    pa = analyze("""
class Leaf { }
class Inner { Object leaf; }
class Outer { Object inner; }
class Main {
  static void main() {
    Outer o = new Outer();
    Inner i = new Inner();
    Leaf l = new Leaf();
    o.inner = i;
    i.leaf = l;
  }
}""")
    hg = HeapGraph(pa)
    outer = next(iter(pa.points_to_var("Main.main/0", "o.1")))
    inner = next(iter(pa.points_to_var("Main.main/0", "i.1")))
    leaf = next(iter(pa.points_to_var("Main.main/0", "l.1")))
    return hg, outer, inner, leaf


def test_successors_one_step():
    hg, outer, inner, leaf = build()
    assert hg.successors(outer) == {inner}
    assert hg.successors(inner) == {leaf}
    assert hg.successors(leaf) == set()


def test_reachable_unbounded():
    hg, outer, inner, leaf = build()
    assert hg.reachable([outer]) == {outer, inner, leaf}


def test_reachable_depth_zero_is_roots_only():
    hg, outer, inner, leaf = build()
    assert hg.reachable([outer], max_depth=0) == {outer}


def test_reachable_depth_one():
    hg, outer, inner, leaf = build()
    assert hg.reachable([outer], max_depth=1) == {outer, inner}


def test_reachable_depth_two_covers_all():
    hg, outer, inner, leaf = build()
    assert hg.reachable([outer], max_depth=2) == {outer, inner, leaf}


def test_reachable_multiple_roots():
    hg, outer, inner, leaf = build()
    assert hg.reachable([inner, leaf], max_depth=0) == {inner, leaf}


def test_cycle_terminates():
    pa = analyze("""
class Node { Object next; }
class Main {
  static void main() {
    Node a = new Node();
    Node b = new Node();
    a.next = b;
    b.next = a;
  }
}""")
    hg = HeapGraph(pa)
    a = next(iter(pa.points_to_var("Main.main/0", "a.1")))
    assert len(hg.reachable([a])) == 2

"""Ordering-policy invariants: the constraint-adding order may change
how the fixpoint is reached, never which fixpoint is reached."""

import pytest

from repro.bounds import Budget
from repro.callgraph import PriorityOrder
from repro.ir import validate_program
from repro.lang import lower_source
from repro.pointer import ChaoticOrder, ContextPolicy, PointerAnalysis
from repro.pointer.ordering import OrderingPolicy
from repro.ssa import program_to_ssa

LIB = """
library class Object { }
"""

SOURCE = """
class A { }
class B { }
class Box { Object f; }
class Helper {
  Object make() { return new A(); }
  Object wrap(Box box) { box.f = new B(); return box.f; }
}
class Main {
  static void main() {
    Helper h = new Helper();
    Box box = new Box();
    Object x = h.make();
    Object y = h.wrap(box);
    Object z = box.f;
  }
}
"""


def analyze(order):
    program = lower_source(LIB + SOURCE)
    program.entrypoints.append("Main.main/0")
    program_to_ssa(program)
    validate_program(program)
    analysis = PointerAnalysis(program, ContextPolicy(), order=order,
                               budget=Budget())
    analysis.solve()
    return analysis


def canonical(analysis):
    return {str(k): frozenset(str(i) for i in pts)
            for k, pts in analysis.iter_pts() if pts}


def test_chaotic_order_is_fifo():
    order = ChaoticOrder()
    nodes = ["n1", "n2", "n3"]
    for node in nodes:
        order.on_node_created(node)
    assert bool(order)
    assert [order.pop() for _ in nodes] == nodes
    assert not order
    assert order.pop() is None


def test_on_edge_is_optional_for_policies():
    # The base hook is a no-op: FIFO policies need not track edges.
    ChaoticOrder().on_edge("caller", "callee")


def test_base_policy_is_abstract():
    policy = OrderingPolicy()
    with pytest.raises(NotImplementedError):
        policy.on_node_created("n")
    with pytest.raises(NotImplementedError):
        policy.pop()
    with pytest.raises(NotImplementedError):
        bool(policy)


def test_solution_is_order_independent():
    """Chaotic and priority-driven constraint adding reach the same
    points-to fixpoint when no budget truncates the sweep."""
    chaotic = analyze(ChaoticOrder())
    priority = analyze(PriorityOrder({"HttpServletRequest.getParameter"},
                                     10 ** 9))
    assert canonical(chaotic) == canonical(priority)
    assert not chaotic.truncated and not priority.truncated


def test_priority_order_drains_every_created_node():
    order = PriorityOrder(set(), 10 ** 9)
    pa = analyze(order)
    # Every call-graph node got its constraints added: the queue is dry.
    assert not order
    assert order.pop() is None
    assert pa.call_graph.node_count() > 0

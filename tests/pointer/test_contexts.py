"""Context and key representation tests."""

from repro.pointer import (AllocSite, CallSiteContext, EMPTY, FieldKey,
                           InstanceKey, LocalKey, ObjContext, ReturnKey,
                           StaticFieldKey, truncate)


def ikey(name="C", ctx=EMPTY, iid=0):
    return InstanceKey(AllocSite("M.m/0", iid, name), ctx)


def test_empty_context_depth():
    assert EMPTY.depth() == 0


def test_call_site_context():
    ctx = CallSiteContext("C.m/0", 5)
    assert ctx.depth() == 1
    assert ctx == CallSiteContext("C.m/0", 5)
    assert ctx != CallSiteContext("C.m/0", 6)


def test_obj_context_depth_nests():
    inner = ikey("A")
    mid = ikey("B", ObjContext(inner))
    outer = ObjContext(mid)
    assert outer.depth() == 2


def test_truncate_keeps_shallow_contexts():
    ctx = ObjContext(ikey())
    assert truncate(ctx, 3) is ctx


def test_truncate_collapses_deep_contexts():
    ctx = EMPTY
    for i in range(10):
        ctx = ObjContext(ikey("C", ctx, i))
    out = truncate(ctx, 3)
    assert out.depth() <= 3


def test_instance_key_identity():
    a = ikey("C")
    b = ikey("C")
    assert a == b
    assert a.with_context(ObjContext(ikey("D"))) != a


def test_instance_key_class_name():
    assert ikey("Foo").class_name == "Foo"


def test_pointer_keys_are_hashable_and_distinct():
    keys = {
        LocalKey("C.m/0", EMPTY, "x"),
        LocalKey("C.m/0", EMPTY, "y"),
        FieldKey(ikey(), "f"),
        StaticFieldKey("C", "g"),
        ReturnKey("C.m/0", EMPTY),
    }
    assert len(keys) == 5


def test_local_keys_distinguish_contexts():
    c1 = CallSiteContext("A.a/0", 1)
    c2 = CallSiteContext("A.a/0", 2)
    assert LocalKey("C.m/0", c1, "x") != LocalKey("C.m/0", c2, "x")

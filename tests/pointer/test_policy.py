"""Context-policy tests (paper §3.1)."""

from repro.ir import Call, Method, Param, STRING
from repro.pointer import (CallSiteContext, ContextPolicy, EMPTY,
                           ObjContext, PolicyConfig)
from repro.pointer.keys import AllocSite, InstanceKey


def make_method(cls, name, static=False):
    return Method(cls, name, [Param("p", STRING)], is_static=static)


def make_call(iid=7):
    call = Call("r", "virtual", "", "m", "recv", ["a"])
    call.iid = iid
    return call


def receiver(cls="C"):
    return InstanceKey(AllocSite("Main.main/0", 0, cls))


def make_policy(**kwargs):
    config = PolicyConfig(collection_classes={"HashMap"},
                          factory_methods={"F.build"},
                          taint_api_methods={"Req.getParameter"})
    for key, value in kwargs.items():
        setattr(config, key, value)
    return ContextPolicy(config)


def test_default_instance_method_gets_object_context():
    policy = make_policy()
    ctx = policy.callee_context("Main.main/0", EMPTY, make_call(),
                                make_method("C", "m"), receiver())
    assert isinstance(ctx, ObjContext)
    assert ctx.receiver == receiver()


def test_static_method_is_context_insensitive():
    policy = make_policy()
    ctx = policy.callee_context("Main.main/0", EMPTY, make_call(),
                                make_method("C", "m", static=True), None)
    assert ctx is EMPTY


def test_taint_api_gets_call_site_context():
    policy = make_policy()
    ctx = policy.callee_context("Main.main/0", EMPTY, make_call(9),
                                make_method("Req", "getParameter"),
                                receiver("Req"))
    assert ctx == CallSiteContext("Main.main/0", 9)


def test_factory_by_registry():
    policy = make_policy()
    ctx = policy.callee_context("Main.main/0", EMPTY, make_call(3),
                                make_method("F", "build", static=True),
                                None)
    assert isinstance(ctx, CallSiteContext)


def test_factory_by_name_prefix():
    policy = make_policy()
    for name in ("create", "createWidget", "makeThing"):
        ctx = policy.callee_context(
            "Main.main/0", EMPTY, make_call(3),
            make_method("Anything", name, static=True), None)
        assert isinstance(ctx, CallSiteContext), name


def test_collection_gets_deep_object_context():
    policy = make_policy()
    ctx = policy.callee_context("Main.main/0", EMPTY, make_call(),
                                make_method("HashMap", "put"),
                                receiver("HashMap"))
    assert isinstance(ctx, ObjContext)


def test_insensitive_config_disables_everything():
    policy = ContextPolicy(PolicyConfig.insensitive())
    assert policy.callee_context(
        "Main.main/0", EMPTY, make_call(),
        make_method("C", "m"), receiver()) is EMPTY
    assert policy.callee_context(
        "Main.main/0", EMPTY, make_call(),
        make_method("Anything", "create", static=True), None) is EMPTY


def test_heap_context_for_collections_clones_per_instance():
    policy = make_policy()
    ctx = ObjContext(receiver("HashMap"))
    heap = policy.heap_context(make_method("HashMap", "put"), ctx)
    assert heap == ctx


def test_heap_context_for_ordinary_methods_is_empty():
    policy = make_policy()
    ctx = ObjContext(receiver())
    assert policy.heap_context(make_method("C", "m"), ctx) is EMPTY


def test_heap_context_for_factory_contexts_is_the_call_site():
    policy = make_policy()
    ctx = CallSiteContext("Main.main/0", 3)
    assert policy.heap_context(make_method("F", "build"), ctx) == ctx

"""Pointer-analysis solver tests."""

from repro.bounds import Budget
from repro.ir import validate_program
from repro.lang import lower_source
from repro.pointer import (ContextPolicy, PointerAnalysis, PolicyConfig)
from repro.ssa import program_to_ssa

LIB = """
library class Object { }
"""


def analyze(source, policy=None, entry="Main.main/0", budget=None,
            excluded=None):
    program = lower_source(LIB + source)
    program.entrypoints.append(entry)
    program_to_ssa(program)
    validate_program(program)
    analysis = PointerAnalysis(
        program, policy or ContextPolicy(),
        budget=budget or Budget(),
        excluded_classes=excluded or set())
    analysis.solve()
    return analysis


def classes_of(analysis, method, var):
    return {k.class_name for k in analysis.points_to_var(method, var)}


def test_allocation_flows_to_local():
    pa = analyze("""
class A { }
class Main { static void main() { A a = new A(); } }""")
    assert classes_of(pa, "Main.main/0", "a.1") == {"A"}


def test_copy_propagates():
    pa = analyze("""
class A { }
class Main { static void main() { A a = new A(); A b = a; } }""")
    assert classes_of(pa, "Main.main/0", "b.1") == {"A"}


def test_field_store_load():
    pa = analyze("""
class A { }
class Box { Object f; }
class Main {
  static void main() {
    Box box = new Box();
    box.f = new A();
    Object out = box.f;
  }
}""")
    assert classes_of(pa, "Main.main/0", "out.1") == {"A"}


def test_field_sensitivity_distinguishes_fields():
    pa = analyze("""
class A { }
class B { }
class Box { Object f; Object g; }
class Main {
  static void main() {
    Box box = new Box();
    box.f = new A();
    box.g = new B();
    Object out = box.f;
  }
}""")
    assert classes_of(pa, "Main.main/0", "out.1") == {"A"}


def test_distinct_allocation_sites_not_conflated():
    pa = analyze("""
class A { }
class B { }
class Box { Object f; }
class Main {
  static void main() {
    Box b1 = new Box();
    Box b2 = new Box();
    b1.f = new A();
    b2.f = new B();
    Object out = b1.f;
  }
}""")
    assert classes_of(pa, "Main.main/0", "out.1") == {"A"}


def test_static_field_flow():
    pa = analyze("""
class A { }
class Reg { static Object slot; }
class Main {
  static void main() {
    Reg.slot = new A();
    Object out = Reg.slot;
  }
}""")
    assert classes_of(pa, "Main.main/0", "out.1") == {"A"}


def test_array_contents_flow():
    pa = analyze("""
class A { }
class Main {
  static void main() {
    Object[] arr = new Object[2];
    arr[0] = new A();
    Object out = arr[1];
  }
}""")
    # Array elements are collapsed: any index reads any element.
    assert classes_of(pa, "Main.main/0", "out.1") == {"A"}


def test_call_graph_built_on_the_fly():
    pa = analyze("""
class A { void go() { } }
class Main {
  static void main() { A a = new A(); a.go(); }
}""")
    assert "A.go/0" in pa.call_graph.reachable_methods()


def test_virtual_dispatch_by_receiver_type():
    pa = analyze("""
class Animal { Object speak() { return new Object(); } }
class Dog extends Animal { Object speak() { return new Dog(); } }
class Main {
  static void main() {
    Animal a = new Dog();
    Object out = a.speak();
  }
}""")
    assert "Dog.speak/0" in pa.call_graph.reachable_methods()
    assert "Animal.speak/0" not in pa.call_graph.reachable_methods()
    assert classes_of(pa, "Main.main/0", "out.1") == {"Dog"}


def test_return_value_flows_to_caller():
    pa = analyze("""
class A { }
class F { Object mk() { return new A(); } }
class Main {
  static void main() {
    F f = new F();
    Object out = f.mk();
  }
}""")
    assert classes_of(pa, "Main.main/0", "out.1") == {"A"}


def test_parameter_flows_into_callee():
    pa = analyze("""
class A { }
class Sink { Object keep(Object o) { return o; } }
class Main {
  static void main() {
    Sink s = new Sink();
    Object out = s.keep(new A());
  }
}""")
    assert classes_of(pa, "Main.main/0", "out.1") == {"A"}


def test_object_sensitivity_separates_receivers():
    source = """
class Box {
  Object item;
  void set(Object o) { this.item = o; }
  Object get() { return this.item; }
}
class A { }
class B { }
class Main {
  static void main() {
    Box b1 = new Box();
    Box b2 = new Box();
    b1.set(new A());
    b2.set(new B());
    Object x = b1.get();
  }
}"""
    precise = analyze(source)
    assert classes_of(precise, "Main.main/0", "x.1") == {"A"}
    sloppy = analyze(source,
                     ContextPolicy(PolicyConfig.insensitive()))
    assert classes_of(sloppy, "Main.main/0", "x.1") == {"A", "B"}


def test_factory_call_strings_separate_sites():
    source = """
class Widget { }
library class F {
  static Widget create() { return new Widget(); }
}
class Holder { Object w; }
class Main {
  static void main() {
    Widget w1 = F.create();
    Widget w2 = F.create();
    Holder h1 = new Holder();
    Holder h2 = new Holder();
    h1.w = w1;
    h2.w = w2;
  }
}"""
    precise = analyze(source)
    w1 = precise.points_to_var("Main.main/0", "w1.1")
    w2 = precise.points_to_var("Main.main/0", "w2.1")
    assert w1 and w2 and not (w1 & w2), "factory results disambiguated"
    sloppy = analyze(source, ContextPolicy(PolicyConfig.insensitive()))
    s1 = sloppy.points_to_var("Main.main/0", "w1.1")
    s2 = sloppy.points_to_var("Main.main/0", "w2.1")
    assert s1 == s2


def test_recursion_terminates():
    pa = analyze("""
class A { }
class R {
  Object rec(int n) {
    if (n > 0) { return this.rec(n - 1); }
    return new A();
  }
}
class Main {
  static void main() {
    R r = new R();
    Object out = r.rec(3);
  }
}""")
    assert classes_of(pa, "Main.main/0", "out.1") == {"A"}


def test_call_graph_node_budget_truncates():
    source = """
class A { }
""" + "\n".join(
        f"class C{i} {{ static void go() {{ C{i+1}.go(); }} }}"
        for i in range(20)) + """
class C20 { static void go() { } }
class Main { static void main() { C0.go(); } }"""
    pa = analyze(source, budget=Budget(max_cg_nodes=5))
    assert pa.truncated
    assert pa.call_graph.node_count() <= 6  # slight overshoot allowed


def test_whitelist_excludes_callee():
    pa = analyze("""
class A { }
class Noisy { static void log(Object o) { } }
class Main {
  static void main() { Noisy.log(new A()); }
}""", excluded={"Noisy"})
    assert "Noisy.log/1" not in pa.call_graph.reachable_methods()


def test_interface_dispatch():
    pa = analyze("""
interface Maker { Object mk(); }
class A { }
class Impl implements Maker {
  public Object mk() { return new A(); }
}
class Main {
  static void main() {
    Impl m = new Impl();
    Object out = m.mk();
  }
}""")
    assert classes_of(pa, "Main.main/0", "out.1") == {"A"}


def test_cast_preserves_points_to():
    pa = analyze("""
class A { }
class Main {
  static void main() {
    Object o = new A();
    A a = (A) o;
  }
}""")
    assert classes_of(pa, "Main.main/0", "a.1") == {"A"}


def test_select_unions_operands():
    # Select is only emitted by model passes; exercise it via the solver
    # API directly.
    from repro.ir import Select
    pa = analyze("""
class A { }
class B { }
class Main {
  static void main() {
    Object a = new A();
    Object b = new B();
  }
}""")
    # simulate: add a Select-like union via copy edges
    from repro.pointer import LocalKey, EMPTY
    ka = LocalKey("Main.main/0", EMPTY, "a.1")
    kb = LocalKey("Main.main/0", EMPTY, "b.1")
    kc = LocalKey("Main.main/0", EMPTY, "c")
    pa.add_copy_edge(ka, kc)
    pa.add_copy_edge(kb, kc)
    pa._solve_constraints()
    assert {k.class_name for k in pa.points_to(kc)} == {"A", "B"}

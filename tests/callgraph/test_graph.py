"""Call-graph structure tests."""

from repro.callgraph import CallGraph, CGNode
from repro.pointer import EMPTY, CallSiteContext


def node(method, ctx=EMPTY):
    return CGNode(method, ctx)


def test_add_node_idempotent():
    cg = CallGraph()
    assert cg.add_node(node("A.m/0"))
    assert not cg.add_node(node("A.m/0"))
    assert cg.node_count() == 1


def test_nodes_distinguish_contexts():
    cg = CallGraph()
    cg.add_node(node("A.m/0"))
    cg.add_node(node("A.m/0", CallSiteContext("B.n/0", 1)))
    assert cg.node_count() == 2
    assert len(cg.nodes_of_method("A.m/0")) == 2


def test_edges_and_adjacency():
    cg = CallGraph()
    a, b = node("A.m/0"), node("B.n/0")
    cg.add_node(a)
    cg.add_node(b)
    assert cg.add_edge(a, 3, b)
    assert not cg.add_edge(a, 3, b)
    assert cg.succs(a) == {b}
    assert cg.preds(b) == {a}
    assert cg.neighbors(a) == {b}


def test_callees_at_site():
    cg = CallGraph()
    a, b, c = node("A.m/0"), node("B.n/0"), node("C.o/0")
    for n in (a, b, c):
        cg.add_node(n)
    cg.add_edge(a, 1, b)
    cg.add_edge(a, 1, c)
    cg.add_edge(a, 2, b)
    assert set(cg.callees_at(a, 1)) == {b, c}
    assert cg.callees_at(a, 2) == [b]
    assert cg.callees_at(a, 9) == []


def test_reachable_methods():
    cg = CallGraph()
    cg.add_node(node("A.m/0"))
    cg.add_node(node("A.m/0", CallSiteContext("X.x/0", 1)))
    cg.add_node(node("B.n/0"))
    assert cg.reachable_methods() == {"A.m/0", "B.n/0"}


def test_len_and_iter():
    cg = CallGraph()
    cg.add_node(node("A.m/0"))
    cg.add_node(node("B.n/0"))
    assert len(cg) == 2
    assert {n.method for n in cg} == {"A.m/0", "B.n/0"}

"""Priority-driven call-graph construction tests (paper §6.1)."""

from repro.bounds import Budget
from repro.callgraph import (PriorityOrder, method_load_fields,
                             method_store_fields)
from repro.ir import validate_program
from repro.lang import lower_source
from repro.pointer import ContextPolicy, PointerAnalysis
from repro.ssa import program_to_ssa

LIB = """
library class Object { }
library class Req {
  native String taintSource();
}
library class String { }
"""

# A program with a taint region (helperA chain) and a cold region
# (coldA chain); sources live at the top of the taint region.
PROGRAM = """
class Taint {
  static void run(Req r) {
    String v = r.taintSource();
    Taint.hop0(v);
  }
  static void hop0(String v) { Taint.hop1(v); }
  static void hop1(String v) { Taint.hop2(v); }
  static void hop2(String v) { }
}
class Cold {
  static void run() { Cold.hop0(1); }
  static void hop0(int x) { Cold.hop1(x); }
  static void hop1(int x) { Cold.hop2(x); }
  static void hop2(int x) { }
}
class Main {
  static void main() {
    Cold.run();
    Req r = new Req();
    Taint.run(r);
  }
}
"""


def run(order=None, budget=None):
    program = lower_source(LIB + PROGRAM)
    program.entrypoints.append("Main.main/0")
    program_to_ssa(program)
    validate_program(program)
    analysis = PointerAnalysis(program, ContextPolicy(), order=order,
                               budget=budget or Budget())
    analysis.solve()
    return analysis


def test_field_scans():
    program = lower_source(LIB + """
class C {
  Object f;
  void w(Object v) { this.f = v; }
  Object r() { return this.f; }
}""")
    assert method_store_fields(program.lookup_method("C.w/1")) == {"f"}
    assert method_load_fields(program.lookup_method("C.r/0")) == {"f"}


def test_priority_zero_for_source_methods():
    order = PriorityOrder({"Req.taintSource"}, max_nodes=100)
    analysis = run(order=order)
    source_nodes = [n for n in analysis.call_graph
                    if n.method == "Taint.run/1"]
    assert source_nodes
    assert order.priority[source_nodes[0]] == 0


def test_priorities_grow_with_distance_from_taint():
    order = PriorityOrder({"Req.taintSource"}, max_nodes=100)
    analysis = run(order=order)

    def prio(method):
        nodes = analysis.call_graph.nodes_of_method(method)
        return min(order.priority[n] for n in nodes)

    assert prio("Taint.hop0/1") <= prio("Taint.hop2/1") or \
        prio("Taint.hop2/1") <= 3
    # Cold code keeps the default (maximal) priority until neighbours
    # pull it down; it has no taint neighbours.
    assert prio("Cold.hop2/1") > prio("Taint.hop0/1")


def test_unbounded_run_reaches_everything_in_any_order():
    chaotic = run()
    prioritized = run(order=PriorityOrder({"Req.taintSource"}, 100))
    assert chaotic.call_graph.reachable_methods() == \
        prioritized.call_graph.reachable_methods()


def test_under_budget_priority_prefers_taint_region():
    budget = Budget(max_cg_nodes=9)
    prioritized = run(order=PriorityOrder({"Req.taintSource"}, 9),
                      budget=budget)
    reached = prioritized.call_graph.reachable_methods()
    processed = {n.method for n in prioritized._processed_nodes}
    assert prioritized.truncated
    # The taint chain is processed in preference to the cold chain.
    taint_done = sum(1 for m in processed if m.startswith("Taint."))
    cold_done = sum(1 for m in processed if m.startswith("Cold."))
    assert taint_done > cold_done


def test_budget_truncation_is_flagged():
    analysis = run(order=PriorityOrder({"Req.taintSource"}, 5),
                   budget=Budget(max_cg_nodes=5))
    assert analysis.truncated


def test_pop_is_stable_without_priorities():
    order = PriorityOrder(set(), max_nodes=50)
    analysis = run(order=order)
    # With no sources, everything still gets analyzed.
    assert "Cold.hop2/1" in analysis.call_graph.reachable_methods()

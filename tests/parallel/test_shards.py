"""Shard-plan tests: determinism, the grain gate, chunking."""

import pytest

from repro.bounds import Budget
from repro.modeling import prepare, default_natives
from repro.parallel import Shard, plan_shards, splittable
from repro.pointer import ContextPolicy, PointerAnalysis
from repro.sdg.noheap import NoHeapSDG
from repro.slicing.base import enumerate_sources
from repro.taint import default_rules

# Three servlets so the XSS rule has three seed groups to shard over.
APP = """
class S0 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("a"));
  }
}
class S1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("b"));
  }
}
class S2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("c"));
    Connection c = DriverManager.getConnection("db");
    c.createStatement().executeQuery("q" + req.getParameter("u"));
  }
}
"""


@pytest.fixture(scope="module")
def sdg():
    prepared = prepare([APP])
    analysis = PointerAnalysis(prepared.program, ContextPolicy(),
                               natives=default_natives())
    analysis.solve()
    return NoHeapSDG(prepared.program, analysis.call_graph)


def test_splittable_gate():
    # Fine grain is safe only without shared mutable budget state.
    assert splittable("hybrid", Budget())
    assert splittable("ci", Budget())
    assert not splittable("cs", Budget())
    assert not splittable("hybrid", Budget(max_state_units=10))
    assert not splittable("hybrid", Budget(max_heap_transitions=10))
    # Witness-relative bounds don't force whole-rule shards.
    assert splittable("hybrid", Budget(max_flow_length=25))


def test_plan_is_deterministic(sdg):
    rules = list(default_rules())
    first = plan_shards(sdg, rules, "hybrid", Budget())
    second = plan_shards(sdg, rules, "hybrid", Budget())
    assert first == second
    assert [s.index for s in first] == list(range(len(first)))


def test_fine_grain_covers_every_seed_group(sdg):
    rules = list(default_rules())
    shards = plan_shards(sdg, rules, "hybrid", Budget())
    for rule_index, rule in enumerate(rules):
        methods = {seed.stmt.ref.method
                   for seed in enumerate_sources(sdg, rule)}
        mine = [s for s in shards if s.rule_index == rule_index]
        if len(methods) > 1:
            covered = [m for s in mine for m in s.groups]
            # Exact partition: every group exactly once, sorted order.
            assert covered == sorted(methods)
        else:
            assert mine == [Shard(mine[0].index, rule_index, rule.name)]


def test_rule_grain_forces_whole_rules(sdg):
    rules = list(default_rules())
    shards = plan_shards(sdg, rules, "hybrid", Budget(), grain="rule")
    assert len(shards) == len(rules)
    assert all(s.groups is None for s in shards)


def test_unsplittable_budget_forces_whole_rules(sdg):
    rules = list(default_rules())
    for budget, strategy in ((Budget(max_state_units=5), "hybrid"),
                             (Budget(max_heap_transitions=5), "hybrid"),
                             (Budget(), "cs")):
        shards = plan_shards(sdg, rules, strategy, budget)
        assert all(s.groups is None for s in shards)


def test_chunk_bound_caps_shards_per_rule(sdg):
    rules = list(default_rules())
    shards = plan_shards(sdg, rules, "hybrid", Budget(),
                         max_shards_per_rule=2)
    for rule_index in range(len(rules)):
        mine = [s for s in shards if s.rule_index == rule_index]
        assert len(mine) <= 2
    # Chunked plans still cover every group exactly once.
    xss = [s for s in shards if s.rule == "XSS" and s.groups]
    covered = [m for s in xss for m in s.groups]
    assert covered == sorted(set(covered))


def test_plan_rejects_bad_arguments(sdg):
    rules = list(default_rules())
    with pytest.raises(ValueError):
        plan_shards(sdg, rules, "hybrid", Budget(), grain="bogus")
    with pytest.raises(ValueError):
        plan_shards(sdg, rules, "hybrid", Budget(), max_shards_per_rule=0)

"""Persistent-pool tests: worker reuse, snapshot shipping under both
start methods, ordered collection, and the serial fallback."""

import multiprocessing as mp
import pickle

import pytest

from repro.bounds import Budget
from repro.modeling import prepare, default_natives
from repro.obs import Observability
from repro.parallel import (EngineSnapshot, PersistentWorkerPool,
                            SnapshotError, WorkerContext,
                            pick_start_method, plan_shards)
from repro.pointer import ContextPolicy, PointerAnalysis
from repro.pointer.heapgraph import HeapGraph
from repro.sdg.hsdg import DirectEdges
from repro.sdg.noheap import NoHeapSDG
from repro.taint import TaintEngine, default_rules

APP = """
class P0 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("a"));
  }
}
class P1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("b"));
    Connection c = DriverManager.getConnection("db");
    c.createStatement().executeQuery("q" + req.getParameter("u"));
  }
}
class P2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String v = req.getParameter("c");
    resp.getWriter().println(v);
  }
}
"""


@pytest.fixture(scope="module")
def pieces():
    prepared = prepare([APP])
    analysis = PointerAnalysis(prepared.program, ContextPolicy(),
                               natives=default_natives())
    analysis.solve()
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    return sdg, DirectEdges(sdg, analysis), HeapGraph(analysis)


def _engine(pieces, **kwargs):
    sdg, direct, heap = pieces
    return TaintEngine(sdg, direct, heap, default_rules(), Budget(),
                       **kwargs)


def test_pick_start_method():
    available = mp.get_all_start_methods()
    assert pick_start_method() in available
    for method in available:
        assert pick_start_method(method) == method
    with pytest.raises(ValueError):
        pick_start_method("definitely-not-a-start-method")


def test_pool_workers_persist_across_shards(pieces):
    """The persistence proof: one pool start, one snapshot
    deserialization per worker, strictly fewer inits than shards."""
    obs = Observability()
    engine = _engine(pieces, jobs=2, obs=obs)
    result = engine.run()
    assert result.flows
    shards = obs.metrics.gauge_value("taint.pool.shards")
    inits = obs.metrics.counter_value("taint.pool.worker_inits")
    assert shards > 2
    assert 1 <= inits <= 2 < shards
    # Exactly one pool startup span for the whole sweep.
    starts = obs.tracer.find("taint.pool.start")
    assert len(starts) == 1
    assert starts[0].attrs["jobs"] == 2
    assert starts[0].attrs["shards"] == shards
    assert starts[0].attrs["snapshot_bytes"] == \
        obs.metrics.gauge_value("taint.pool.snapshot_bytes") > 0
    # Per-shard timings ride home from the workers.
    shard_timer = obs.metrics.timer_summary("taint.pool.shard_seconds")
    assert shard_timer["count"] == shards


def test_run_shards_returns_shard_order(pieces):
    engine = _engine(pieces)
    rules = list(engine.rules)
    shards = plan_shards(engine.sdg, rules, "hybrid", Budget())
    snapshot = EngineSnapshot(engine, shards)
    with PersistentWorkerPool(snapshot, 2) as pool:
        outcomes = pool.run_shards(len(shards))
    # Dynamic dispatch completes in arbitrary order; collection is by
    # shard index — the determinism the merge relies on.
    assert [out.index for out in outcomes] == list(range(len(shards)))
    assert len({out.pid for out in outcomes}) <= 2


@pytest.mark.parametrize("method", mp.get_all_start_methods())
def test_start_methods_agree_with_serial(pieces, method):
    """Snapshot protocol is start-method agnostic: fork children and
    fresh spawned interpreters reconstruct identical bit tables."""
    serial = _engine(pieces).run()
    parallel = _engine(pieces, jobs=2, start_method=method).run()
    assert [f.sort_key() for f in parallel.flows] == \
        [f.sort_key() for f in serial.flows]
    assert parallel.completed_rules == serial.completed_rules


def test_worker_context_round_trip(pieces):
    """A WorkerContext rebuilt purely from the blob reproduces the
    engine's shard outcomes (what every pool worker does once)."""
    engine = _engine(pieces)
    rules = list(engine.rules)
    shards = plan_shards(engine.sdg, rules, "hybrid", Budget())
    snapshot = EngineSnapshot(engine, shards)
    ctx = WorkerContext(pickle.loads(pickle.dumps(snapshot.blob)))
    outs = [ctx.run_shard(i) for i in range(len(shards))]
    flows = sorted((f for out in outs for f in out.flows),
                   key=lambda f: f.sort_key())
    serial = _engine(pieces).run()
    assert [f.sort_key() for f in flows] == \
        [f.sort_key() for f in serial.flows]
    assert ctx.init_seconds > 0


def test_unpicklable_engine_falls_back_to_serial(pieces):
    """SnapshotError (unshippable state) must degrade to the serial
    reference path, not crash the sweep."""
    obs = Observability()
    engine = _engine(pieces, jobs=2, obs=obs)
    engine.sdg.unpicklable_probe = lambda: None  # closures can't ship
    try:
        result = engine.run()
    finally:
        del engine.sdg.unpicklable_probe
    serial = _engine(pieces).run()
    assert [f.sort_key() for f in result.flows] == \
        [f.sort_key() for f in serial.flows]
    # The pool never started, so no parallel bookkeeping was recorded —
    # just the aborted startup span, annotated with the fallback.
    assert obs.metrics.gauge_value("taint.pool.workers") is None
    starts = obs.tracer.find("taint.pool.start")
    assert len(starts) == 1
    assert starts[0].attrs["fallback"] == "serial"
    assert "SnapshotError" in starts[0].attrs["error"]


def test_snapshot_error_type(pieces):
    engine = _engine(pieces)
    engine.sdg.unpicklable_probe = lambda: None
    try:
        with pytest.raises(SnapshotError):
            EngineSnapshot(engine, [])
    finally:
        del engine.sdg.unpicklable_probe

"""Checkpoint journal tests: resume skips completed shards, foreign or
corrupt journals are discarded (never trusted), and an interrupted
parallel sweep restarted over the same directory re-executes exactly
the unfinished remainder with a byte-identical report."""

import json

import pytest

from repro.bounds import Budget
from repro.modeling import prepare, default_natives
from repro.obs import Observability
from repro.parallel import CheckpointJournal, plan_fingerprint
from repro.pointer import ContextPolicy, PointerAnalysis
from repro.pointer.heapgraph import HeapGraph
from repro.sdg.hsdg import DirectEdges
from repro.sdg.noheap import NoHeapSDG
from repro.taint import TaintEngine, default_rules
from repro.taint.engine import ShardOutcome

APP = """
class P0 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("a"));
  }
}
class P1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("b"));
    Connection c = DriverManager.getConnection("db");
    c.createStatement().executeQuery("q" + req.getParameter("u"));
  }
}
class P2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String v = req.getParameter("c");
    resp.getWriter().println(v);
  }
}
"""


@pytest.fixture(scope="module")
def pieces():
    prepared = prepare([APP])
    analysis = PointerAnalysis(prepared.program, ContextPolicy(),
                               natives=default_natives())
    analysis.solve()
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    return sdg, DirectEdges(sdg, analysis), HeapGraph(analysis)


def _engine(pieces, **kwargs):
    sdg, direct, heap = pieces
    return TaintEngine(sdg, direct, heap, default_rules(), Budget(),
                       **kwargs)


def _outcome(index: int, completed: bool = True) -> ShardOutcome:
    return ShardOutcome(index=index, rule_index=index, rule=f"R{index}",
                        completed=completed)


# -- journal unit behaviour ---------------------------------------------------

def test_record_resume_round_trip(tmp_path):
    journal = CheckpointJournal(str(tmp_path / "ckpt"), "fp")
    assert journal.resume("plan", 4) == {}
    journal.record(_outcome(0))
    journal.record(_outcome(2))
    again = CheckpointJournal(str(tmp_path / "ckpt"), "fp")
    outcomes = again.resume("plan", 4)
    assert sorted(outcomes) == [0, 2]
    assert outcomes[2].rule == "R2"
    assert again.resumed == 2 and again.skipped == 0


def test_incomplete_outcomes_are_never_journaled(tmp_path):
    """A failed/degraded shard must re-run on resume, so a transient
    crash never becomes a permanent degradation."""
    journal = CheckpointJournal(str(tmp_path), "fp")
    journal.resume("plan", 2)
    journal.record(_outcome(0, completed=False))
    again = CheckpointJournal(str(tmp_path), "fp")
    assert again.resume("plan", 2) == {}


def test_foreign_fingerprint_resets_the_journal(tmp_path):
    journal = CheckpointJournal(str(tmp_path), "fp-a")
    journal.resume("plan", 2)
    journal.record(_outcome(0))
    other = CheckpointJournal(str(tmp_path), "fp-b")
    assert other.resume("plan", 2) == {}
    assert "foreign" in other.reset_reason
    # The stale outcomes are gone for good — even the original identity
    # starts over rather than trusting a reset directory.
    back = CheckpointJournal(str(tmp_path), "fp-a")
    assert back.resume("plan", 2) == {}


def test_changed_plan_resets_the_journal(tmp_path):
    journal = CheckpointJournal(str(tmp_path), "fp")
    journal.resume("plan-1", 2)
    journal.record(_outcome(0))
    again = CheckpointJournal(str(tmp_path), "fp")
    assert again.resume("plan-2", 2) == {}
    assert "foreign" in again.reset_reason


def test_corrupt_meta_resets_instead_of_raising(tmp_path):
    journal = CheckpointJournal(str(tmp_path), "fp")
    journal.resume("plan", 2)
    journal.record(_outcome(0))
    (tmp_path / "meta.json").write_text("{broken", encoding="utf-8")
    again = CheckpointJournal(str(tmp_path), "fp")
    assert again.resume("plan", 2) == {}


def test_crash_truncated_tail_is_skipped(tmp_path):
    """A parent killed mid-append leaves an unterminated final line;
    the finished records before it still resume."""
    journal = CheckpointJournal(str(tmp_path), "fp")
    journal.resume("plan", 4)
    journal.record(_outcome(0))
    journal.record(_outcome(1))
    text = (tmp_path / "shards.jsonl").read_text(encoding="utf-8")
    lines = text.splitlines()
    (tmp_path / "shards.jsonl").write_text(
        "\n".join(lines[:-1]) + "\n" + lines[-1][:20], encoding="utf-8")
    again = CheckpointJournal(str(tmp_path), "fp")
    assert sorted(again.resume("plan", 4)) == [0]


def test_undecodable_record_reruns_that_shard_only(tmp_path):
    journal = CheckpointJournal(str(tmp_path), "fp")
    journal.resume("plan", 4)
    journal.record(_outcome(0))
    with open(tmp_path / "shards.jsonl", "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"schema": 1, "index": 1,
                             "blob": "bm90LWEtcGlja2xl"}) + "\n")
    journal.record(_outcome(2))
    again = CheckpointJournal(str(tmp_path), "fp")
    assert sorted(again.resume("plan", 4)) == [0, 2]
    assert again.skipped == 1


def test_plan_fingerprint_tracks_the_shard_list(pieces):
    from repro.parallel import plan_shards
    engine = _engine(pieces)
    rules = list(engine.rules)
    shards = plan_shards(engine.sdg, rules, "hybrid", Budget())
    assert plan_fingerprint(shards) == plan_fingerprint(shards)
    assert plan_fingerprint(shards) != plan_fingerprint(shards[:-1])


# -- engine integration -------------------------------------------------------

def test_interrupted_sweep_resumes_only_the_remainder(pieces, tmp_path):
    """The acceptance proof: K of N shards journaled -> the restart
    executes exactly N-K shards, and the merged report is identical."""
    serial = _engine(pieces).run()
    serial_keys = [f.sort_key() for f in serial.flows]

    obs1 = Observability()
    journal1 = CheckpointJournal(str(tmp_path), "engine-fp")
    full = _engine(pieces, jobs=2, obs=obs1, checkpoint=journal1).run()
    assert [f.sort_key() for f in full.flows] == serial_keys
    shards = int(obs1.metrics.gauge_value("taint.pool.shards"))
    assert obs1.metrics.counter_value("taint.pool.shards_executed") \
        == shards
    assert obs1.metrics.counter_value("taint.pool.shards_resumed") == 0

    # Simulate the interruption: keep only the first K journal lines.
    lines = (tmp_path / "shards.jsonl").read_text(
        encoding="utf-8").splitlines()
    keep = len(lines) // 2
    assert 0 < keep < shards
    (tmp_path / "shards.jsonl").write_text(
        "\n".join(lines[:keep]) + "\n", encoding="utf-8")

    obs2 = Observability()
    journal2 = CheckpointJournal(str(tmp_path), "engine-fp")
    resumed = _engine(pieces, jobs=2, obs=obs2,
                      checkpoint=journal2).run()
    assert [f.sort_key() for f in resumed.flows] == serial_keys
    assert obs2.metrics.counter_value("taint.pool.shards_resumed") \
        == keep
    assert obs2.metrics.counter_value("taint.pool.shards_executed") \
        == shards - keep


def test_fully_journaled_sweep_starts_no_workers(pieces, tmp_path):
    """A complete journal resumes everything: zero shards executed,
    zero worker inits — the pool never starts."""
    journal1 = CheckpointJournal(str(tmp_path), "engine-fp")
    reference = _engine(pieces, jobs=2, checkpoint=journal1).run()
    obs = Observability()
    journal2 = CheckpointJournal(str(tmp_path), "engine-fp")
    resumed = _engine(pieces, jobs=2, obs=obs,
                      checkpoint=journal2).run()
    assert [f.sort_key() for f in resumed.flows] == \
        [f.sort_key() for f in reference.flows]
    assert obs.metrics.counter_value("taint.pool.shards_executed") == 0
    assert obs.metrics.counter_value("taint.pool.worker_inits") == 0
    assert not obs.tracer.find("taint.pool.start")

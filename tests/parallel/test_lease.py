"""Pool-lease tests: a leased (reused) worker pool reloads snapshots
into live workers instead of respawning them, stays byte-identical to
the serial sweep, and heals itself by rebuilding when broken."""

import pytest

from repro.bounds import Budget
from repro.modeling import default_natives, prepare
from repro.obs import Observability
from repro.parallel import PersistentWorkerPool, PoolLease
from repro.parallel.snapshot import EngineSnapshot
from repro.pointer import ContextPolicy, PointerAnalysis
from repro.pointer.heapgraph import HeapGraph
from repro.sdg.hsdg import DirectEdges
from repro.sdg.noheap import NoHeapSDG
from repro.taint import TaintEngine, default_rules

APP_A = """
class A0 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("a"));
  }
}
class A1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Connection c = DriverManager.getConnection("db");
    c.createStatement().executeQuery("q" + req.getParameter("u"));
  }
}
"""

APP_B = """
class B0 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("x"));
    resp.getWriter().println(req.getParameter("y"));
  }
}
class B1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Connection c = DriverManager.getConnection("db");
    c.createStatement().executeQuery(req.getParameter("z"));
  }
}
"""


def build_pieces(source):
    prepared = prepare([source])
    analysis = PointerAnalysis(prepared.program, ContextPolicy(),
                               natives=default_natives())
    analysis.solve()
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    return sdg, DirectEdges(sdg, analysis), HeapGraph(analysis)


@pytest.fixture(scope="module")
def apps():
    return build_pieces(APP_A), build_pieces(APP_B)


def run(pieces, jobs=1, lease=None, obs=None):
    sdg, direct, heap = pieces
    engine = TaintEngine(sdg, direct, heap, default_rules(), Budget(),
                         jobs=jobs, obs=obs, pool_lease=lease)
    return engine.run()


def keys(result):
    return [f.sort_key() for f in result.flows]


def test_lease_reuses_pool_across_apps_byte_identically(apps):
    pieces_a, pieces_b = apps
    ref_a, ref_b = run(pieces_a), run(pieces_b)
    with PoolLease(2) as lease:
        obs1, obs2, obs3 = (Observability() for _ in range(3))
        got_a = run(pieces_a, jobs=2, lease=lease, obs=obs1)
        got_b = run(pieces_b, jobs=2, lease=lease, obs=obs2)
        again_a = run(pieces_a, jobs=2, lease=lease, obs=obs3)
        assert keys(got_a) == keys(ref_a)
        assert keys(got_b) == keys(ref_b)
        assert keys(again_a) == keys(ref_a)
        assert lease.builds == 1
        assert lease.reloads == 2
        assert obs1.metrics.gauge_value("taint.pool.reused") == 0.0
        assert obs2.metrics.gauge_value("taint.pool.reused") == 1.0
        assert obs3.metrics.gauge_value("taint.pool.reused") == 1.0
    assert lease.pool is None  # closed


def test_reload_repoints_every_worker(apps):
    pieces_a, pieces_b = apps
    engine_a = TaintEngine(*pieces_a, default_rules(), Budget(), jobs=2)
    engine_a._rule_list = list(default_rules())
    from repro.parallel import plan_shards
    shards_a = plan_shards(pieces_a[0], engine_a._rule_list, "hybrid",
                           Budget(), "auto")
    snap_a = EngineSnapshot(engine_a, shards_a)
    pool = PersistentWorkerPool(snap_a, jobs=2)
    try:
        first = pool.run_shards(len(shards_a))
        assert all(out is not None for out in first)

        engine_b = TaintEngine(*pieces_b, default_rules(), Budget(),
                               jobs=2)
        engine_b._rule_list = list(default_rules())
        shards_b = plan_shards(pieces_b[0], engine_b._rule_list,
                               "hybrid", Budget(), "auto")
        snap_b = EngineSnapshot(engine_b, shards_b)
        assert pool.reload(snap_b) is True
        assert pool.snapshot is snap_b
        second = pool.run_shards(len(shards_b))
        serial = run(pieces_b)
        merged = engine_b._merge_outcomes(engine_b._rule_list, second)
        from repro.taint.engine import canonical_flows
        assert [f.sort_key() for f in canonical_flows(merged.flows)] \
            == keys(serial)
    finally:
        pool.shutdown()


def test_lease_rebuilds_after_broken_pool(apps):
    pieces_a, _ = apps
    ref = run(pieces_a)
    lease = PoolLease(2)
    try:
        got = run(pieces_a, jobs=2, lease=lease)
        assert keys(got) == keys(ref)
        # Break the pool out from under the lease; the next acquire's
        # reload rendezvous must fail and fall back to a rebuild.
        lease.pool._pool.shutdown(wait=True)
        got = run(pieces_a, jobs=2, lease=lease)
        assert keys(got) == keys(ref)
        assert lease.builds == 2
    finally:
        lease.close()

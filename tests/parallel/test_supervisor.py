"""Pool supervision tests: crash retry, hang watchdog, poison-shard
quarantine, corrupt-outcome rejection, and the restart budget — all
against scripted process faults (repro.resilience.faults, worker.*
seams)."""

import pytest

from repro.bounds import Budget
from repro.modeling import prepare, default_natives
from repro.obs import Observability
from repro.parallel import SupervisionPolicy, WorkerInitError
from repro.parallel import pool as pool_mod
from repro.pointer import ContextPolicy, PointerAnalysis
from repro.pointer.heapgraph import HeapGraph
from repro.resilience import (PARTIAL_CRASH, Fault, FaultPlan,
                              ResilienceContext)
from repro.sdg.hsdg import DirectEdges
from repro.sdg.noheap import NoHeapSDG
from repro.taint import TaintEngine, default_rules

APP = """
class P0 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("a"));
  }
}
class P1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("b"));
    Connection c = DriverManager.getConnection("db");
    c.createStatement().executeQuery("q" + req.getParameter("u"));
  }
}
class P2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String v = req.getParameter("c");
    resp.getWriter().println(v);
  }
}
"""


@pytest.fixture(scope="module")
def pieces():
    prepared = prepare([APP])
    analysis = PointerAnalysis(prepared.program, ContextPolicy(),
                               natives=default_natives())
    analysis.solve()
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    return sdg, DirectEdges(sdg, analysis), HeapGraph(analysis)


def _engine(pieces, faults=None, **kwargs):
    sdg, direct, heap = pieces
    resilience = ResilienceContext(faults=faults) if faults else None
    return TaintEngine(sdg, direct, heap, default_rules(), Budget(),
                       resilience=resilience, **kwargs)


@pytest.fixture(scope="module")
def serial_keys(pieces):
    return [f.sort_key() for f in _engine(pieces).run().flows]


def test_killed_worker_is_retried_byte_identically(pieces, serial_keys):
    """A shard that SIGKILLs its worker once is requeued against a
    rebuilt pool and the report never learns about it."""
    obs = Observability()
    plan = FaultPlan.of(Fault("worker.shard", at=0,
                              action="kill-worker", attempts=1))
    result = _engine(pieces, faults=plan, jobs=2, obs=obs).run()
    assert [f.sort_key() for f in result.flows] == serial_keys
    assert obs.metrics.counter_value("taint.pool.retries") >= 1
    assert obs.metrics.counter_value("taint.pool.restarts") >= 1
    retry_spans = obs.tracer.find("taint.pool.retry")
    assert retry_spans and retry_spans[0].attrs["kind"] == "crash"
    assert retry_spans[0].attrs["backoff_seconds"] >= 0


def test_poison_shard_quarantined_to_partial_crash(pieces, serial_keys):
    """A shard that kills its worker on *every* attempt is abandoned
    honestly: partial-crash verdict, per-shard diagnostic, and the
    other rules' flows survive."""
    obs = Observability()
    plan = FaultPlan.of(Fault("worker.shard", at=0,
                              action="kill-worker", attempts=-1))
    engine = _engine(pieces, faults=plan, jobs=2, obs=obs)
    result = engine.run()
    res = engine.resilience
    assert res.completeness() == PARTIAL_CRASH
    diags = [d for d in res.diagnostics.diagnostics
             if d.kind == "worker-crash"]
    assert diags and diags[0].detail["shard"] == 0
    assert obs.metrics.counter_value("taint.pool.quarantined") >= 1
    # Only the abandoned shard's flows are missing, never extras.
    keys = [f.sort_key() for f in result.flows]
    assert set(keys) < set(serial_keys)


def test_hang_watchdog_reaps_and_retries(pieces, serial_keys):
    """A wedged worker is SIGKILLed once its shard exceeds the hang
    threshold, converting the hang into an ordinary retried crash."""
    obs = Observability()
    plan = FaultPlan.of(Fault("worker.shard", at=0,
                              action="hang-worker", attempts=1))
    policy = SupervisionPolicy(hang_seconds=0.75)
    result = _engine(pieces, faults=plan, jobs=2, obs=obs,
                     supervision=policy).run()
    assert [f.sort_key() for f in result.flows] == serial_keys
    assert obs.metrics.counter_value("taint.pool.hangs") >= 1
    assert obs.metrics.counter_value("taint.pool.retries") >= 1


def test_corrupt_outcome_is_rejected_and_retried(pieces, serial_keys):
    """A payload that is not a ShardOutcome never reaches the merge:
    the pool is healthy, so the shard retries in place."""
    obs = Observability()
    plan = FaultPlan.of(Fault("worker.shard", at=0,
                              action="corrupt-outcome", attempts=1))
    result = _engine(pieces, faults=plan, jobs=2, obs=obs).run()
    assert [f.sort_key() for f in result.flows] == serial_keys
    assert obs.metrics.counter_value("taint.pool.corrupt_outcomes") >= 1
    assert obs.metrics.counter_value("taint.pool.retries") >= 1
    # No pool rebuild: corruption is payload-level, not process death.
    assert "taint.pool.restarts" not in \
        obs.metrics.snapshot()["counters"]


def test_always_corrupt_shard_recovers_in_parent(pieces, serial_keys):
    """corrupt-outcome on every attempt exhausts the retry budget, but
    the parent re-run has no transport to corrupt — still identical."""
    obs = Observability()
    plan = FaultPlan.of(Fault("worker.shard", at=0,
                              action="corrupt-outcome", attempts=-1))
    result = _engine(pieces, faults=plan, jobs=2, obs=obs).run()
    assert [f.sort_key() for f in result.flows] == serial_keys
    assert obs.metrics.counter_value("taint.pool.quarantined") >= 1


def test_initializer_death_exhausts_restarts_then_parent_serial(
        pieces, serial_keys):
    """Every pool generation dying in its initializer spends the
    restart budget; the whole plan is then re-run serially in the
    parent — still byte-identical."""
    obs = Observability()
    plan = FaultPlan.of(Fault("worker.init", at=-1,
                              action="kill-worker", attempts=-1))
    result = _engine(pieces, faults=plan, jobs=2, obs=obs).run()
    assert [f.sort_key() for f in result.flows] == serial_keys
    assert obs.metrics.counter_value("taint.pool.restarts") \
        == SupervisionPolicy().max_pool_restarts
    shards = obs.metrics.gauge_value("taint.pool.shards")
    assert obs.metrics.counter_value("taint.pool.quarantined") == shards


def test_single_init_crash_is_survived(pieces, serial_keys):
    """One dead generation (attempts=1 matches generation 0 only) is
    absorbed by a single rebuild."""
    obs = Observability()
    plan = FaultPlan.of(Fault("worker.init", at=-1,
                              action="kill-worker", attempts=1))
    result = _engine(pieces, faults=plan, jobs=2, obs=obs).run()
    assert [f.sort_key() for f in result.flows] == serial_keys
    assert obs.metrics.counter_value("taint.pool.restarts") >= 1
    assert "taint.pool.quarantined" not in \
        obs.metrics.snapshot()["counters"]


def test_untroubled_run_has_no_supervision_counters(pieces):
    """Supervision bookkeeping appears only when supervision acted."""
    obs = Observability()
    result = _engine(pieces, jobs=2, obs=obs).run()
    assert result.flows
    counters = obs.metrics.snapshot()["counters"]
    for name in ("taint.pool.retries", "taint.pool.restarts",
                 "taint.pool.hangs", "taint.pool.corrupt_outcomes",
                 "taint.pool.quarantined"):
        assert name not in counters, name


def test_run_shard_without_context_names_the_dead_initializer():
    """A shard dispatched into a worker whose initializer failed gets a
    diagnosable WorkerInitError, not a bare AttributeError."""
    saved = pool_mod._WORKER_CONTEXT
    pool_mod._WORKER_CONTEXT = None
    try:
        with pytest.raises(WorkerInitError,
                           match="initializer failed"):
            pool_mod._run_shard(3)
    finally:
        pool_mod._WORKER_CONTEXT = saved


def test_policy_hang_threshold_resolution():
    policy = SupervisionPolicy(hang_multiple=4.0)
    assert policy.hang_threshold(None) is None
    assert policy.hang_threshold(2.0) == 8.0
    assert SupervisionPolicy(hang_seconds=1.5).hang_threshold(2.0) == 1.5


def test_policy_backoff_is_bounded_and_jittered():
    import random
    policy = SupervisionPolicy(backoff_base=0.1, backoff_cap=1.0)
    rng = random.Random(7)
    delays = [policy.backoff(restart, rng) for restart in range(10)]
    assert all(0.05 <= delay <= 1.0 for delay in delays)
    # Exponential up to the cap.
    assert max(delays) <= policy.backoff_cap

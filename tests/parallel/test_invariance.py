"""Shard-granularity invariance: serial, every jobs count, every grain,
and every chunk size must produce the identical report — including when
the degradation ladder trips or a deadline expires mid-pool."""

import pytest

from repro.bench.generator import scaling_corpus
from repro.bounds import Budget
from repro.core import TAJ, TAJConfig
from repro.modeling import prepare, default_natives
from repro.pointer import ContextPolicy, PointerAnalysis
from repro.pointer.heapgraph import HeapGraph
from repro.resilience import Fault, FaultPlan
from repro.sdg.hsdg import DirectEdges
from repro.sdg.noheap import NoHeapSDG
from repro.taint import TaintEngine, default_rules


@pytest.fixture(scope="module")
def pieces():
    # The scale-2 generator corpus: ~7 servlets, enough seed groups for
    # the fine grain to produce a multi-shard plan per rule.
    app = scaling_corpus(2)
    prepared = prepare(app.sources)
    analysis = PointerAnalysis(prepared.program, ContextPolicy(),
                               natives=default_natives())
    analysis.solve()
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    return sdg, DirectEdges(sdg, analysis), HeapGraph(analysis)


def _sweep(pieces, budget=None, **kwargs):
    sdg, direct, heap = pieces
    engine = TaintEngine(sdg, direct, heap, default_rules(),
                         budget or Budget(), **kwargs)
    return engine.run()


def _canon(result):
    return ([f.sort_key() for f in result.flows], result.completed_rules,
            result.final_strategy, result.failed, result.truncated,
            result.suppressed_by_length)


def test_grains_and_chunk_sizes_match_serial(pieces):
    reference = _canon(_sweep(pieces))
    for kwargs in ({"jobs": 2}, {"jobs": 4},
                   {"jobs": 2, "shard_grain": "rule"},
                   {"jobs": 2, "shard_grain": "entrypoint"},
                   {"jobs": 2, "shards_per_rule": 1},
                   {"jobs": 2, "shards_per_rule": 3},
                   {"jobs": 4, "shards_per_rule": 100}):
        assert _canon(_sweep(pieces, **kwargs)) == reference, kwargs


def test_bounded_budget_matches_serial_across_grains(pieces):
    # Witness-relative bounds (flow length) keep the fine grain legal;
    # the suppression counts must survive sharding too.
    budget = Budget(max_flow_length=12)
    reference = _canon(_sweep(pieces, budget=budget))
    for kwargs in ({"jobs": 2}, {"jobs": 2, "shards_per_rule": 3},
                   {"jobs": 2, "shard_grain": "rule"}):
        got = _canon(_sweep(pieces, budget=Budget(max_flow_length=12),
                            **kwargs))
        assert got == reference, kwargs


def test_slicer_global_budget_auto_coarsens(pieces):
    # An armed heap-transition budget forbids seed splitting; "auto"
    # must fall back to whole-rule shards and still match serial.
    budget = Budget(max_heap_transitions=3)
    reference = _canon(_sweep(pieces, budget=budget))
    got = _canon(_sweep(pieces, budget=Budget(max_heap_transitions=3),
                        jobs=4))
    assert got == reference


APP_SOURCES = scaling_corpus(2).sources


def _pipeline_report(config):
    result = TAJ(config).analyze_sources(APP_SOURCES)
    return (sorted((i.rule, i.source, i.sink)
                   for i in result.report.issues),
            result.completeness, result.failed)


def test_ladder_trip_is_jobs_invariant():
    """A CS budget trip mid-sweep walks the ladder identically under
    serial, jobs=2, and jobs=4 (whole-rule shards: cs is unsplittable)."""
    def config(jobs):
        cfg = TAJConfig.cs(max_state_units=5).with_resilience(
            resilient=True)
        return cfg.with_jobs(jobs) if jobs > 1 else cfg

    serial = _pipeline_report(config(1))
    assert serial[1] == "partial-budget"
    for jobs in (2, 4):
        assert _pipeline_report(config(jobs)) == serial


def test_mid_pool_deadline_is_deterministic():
    """A deadline tripped inside the sweep (injected, so it fires
    deterministically) yields the same partial report at every jobs
    count: the deadline rides the snapshot into each shard's fresh
    resilience copy."""
    def run(jobs):
        cfg = TAJConfig.hybrid_unbounded().with_resilience(
            deadline_seconds=3600.0, resilient=True)
        if jobs > 1:
            cfg = cfg.with_jobs(jobs)
        fault = Fault("slicing.hybrid", action="trip-deadline")
        result = TAJ(cfg, faults=FaultPlan.of(fault)).analyze_sources(
            APP_SOURCES)
        issues = (sorted((i.rule, i.source, i.sink)
                         for i in result.report.issues)
                  if result.report is not None else None)
        return issues, result.completeness, result.failed

    serial = run(1)
    assert not serial[2], "a deadline abort is partial, not failed"
    assert serial[1].startswith("partial"), serial[1]
    for jobs in (2, 4):
        assert run(jobs) == serial

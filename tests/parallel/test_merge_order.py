"""Out-of-order shard completion must never reach the merged record:
metrics, degradations, and diagnostics are folded in shard order."""

import pytest

from repro.bounds import Budget
from repro.core import TAJ, TAJConfig
from repro.modeling import prepare, default_natives
from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.pointer import ContextPolicy, PointerAnalysis
from repro.pointer.heapgraph import HeapGraph
from repro.sdg.hsdg import DirectEdges
from repro.sdg.noheap import NoHeapSDG
from repro.taint import TaintEngine, default_rules

APP = """
class M0 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("a"));
  }
}
class M1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("b"));
    Connection c = DriverManager.getConnection("db");
    c.createStatement().executeQuery("q" + req.getParameter("u"));
  }
}
"""


@pytest.fixture(scope="module")
def pieces():
    prepared = prepare([APP])
    analysis = PointerAnalysis(prepared.program, ContextPolicy(),
                               natives=default_natives())
    analysis.solve()
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    return sdg, DirectEdges(sdg, analysis), HeapGraph(analysis)


def test_metrics_merge_in_fixed_order_is_deterministic():
    """The parent merges worker registries in shard order; repeated
    merges of the same sequence must agree bit-for-bit (float summation
    order is part of the contract)."""
    def children():
        out = []
        for value in (0.1, 0.2, 0.3, 1e-9, 1e9):
            child = MetricsRegistry()
            child.inc("x", value)
            child.record_time("t", value)
            child.record_value("v", value)
            out.append(child)
        return out

    def merged():
        parent = MetricsRegistry()
        for child in children():
            parent.merge(child)
        return parent.snapshot()

    assert merged() == merged()


def test_repeated_parallel_runs_merge_identically(pieces):
    """Dynamic dispatch randomizes completion order across runs; the
    merged counters and spans must not notice."""
    sdg, direct, heap = pieces

    def run():
        obs = Observability()
        engine = TaintEngine(sdg, direct, heap, default_rules(),
                             Budget(), jobs=2, obs=obs)
        result = engine.run()
        counters = {name: value
                    for name, value in
                    obs.metrics.snapshot()["counters"].items()
                    # Worker-init attribution depends on which worker
                    # won each task — everything else must be stable.
                    if name != "taint.pool.worker_inits"}
        spans = [(s.name, s.attrs.get("rule"), s.attrs.get("flows"))
                 for s in obs.tracer.find("taint.rule")]
        return ([f.sort_key() for f in result.flows], counters, spans)

    first = run()
    for _ in range(2):
        assert run() == first


def test_ladder_degradations_replay_in_rule_order():
    """absorb_child replays worker degradation records in shard (= rule)
    order, so the parent's record is identical run to run even though
    workers finish in arbitrary order."""
    def degradations():
        config = TAJConfig.cs(max_state_units=5).with_resilience(
            resilient=True).with_jobs(2)
        result = TAJ(config).analyze_sources([APP])
        return [(d.phase, d.trigger, d.fallback)
                for d in result.degradations]

    first = degradations()
    assert first, "the tiny CS budget must trip the ladder"
    for _ in range(2):
        assert degradations() == first

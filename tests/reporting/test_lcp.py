"""LCP grouping tests (paper §5, Figure 3)."""

from repro.reporting import FlowGroup, GroupKey, build_report, group_flows
from repro.sdg.nodes import StmtRef
from repro.taint import default_rules
from repro.taint.flows import TaintFlow


def flow(rule="XSS", source=("A.m/0", 1), sink=("A.m/0", 9),
         lcp=("A.m/0", 5), length=3, carrier=False):
    return TaintFlow(rule=rule, source=StmtRef(*source),
                     sink=StmtRef(*sink),
                     sink_display="PrintWriter.println",
                     lcp=StmtRef(*lcp), length=length, via_carrier=carrier)


def test_flows_with_same_lcp_and_rule_grouped():
    """Figure 3: p1 and p2 share the LCP (n4) and issue type -> one
    equivalence class."""
    p1 = flow(sink=("Lib.n10/0", 1))
    p2 = flow(sink=("Lib.n11/0", 1))
    groups = group_flows([p1, p2], default_rules())
    assert len(groups) == 1
    assert groups[0].size == 2


def test_different_lcp_separates_flows():
    """Figure 3: p3 and p4 share source and sink but different LCPs."""
    p3 = flow(lcp=("A.n4/0", 2))
    p4 = flow(lcp=("A.n3/0", 7))
    groups = group_flows([p3, p4], default_rules())
    assert len(groups) == 2


def test_different_issue_type_separates_flows():
    """Figure 3: p4 and p5 share source and LCP but end at sinks of
    different issue types -> both reported."""
    p4 = flow(rule="XSS")
    p5 = flow(rule="SQLI", sink=("A.m/0", 12))
    groups = group_flows([p4, p5], default_rules())
    assert len(groups) == 2


def test_different_sources_separate():
    a = flow(source=("A.m/0", 1))
    b = flow(source=("B.m/0", 1))
    assert len(group_flows([a, b], default_rules())) == 2


def test_representative_is_shortest_member():
    short = flow(length=2, sink=("A.m/0", 9))
    long_ = flow(length=9, sink=("A.m/0", 10))
    groups = group_flows([long_, short], default_rules())
    assert groups[0].representative is short


def test_remediation_comes_from_rule():
    groups = group_flows([flow(rule="SQLI")], default_rules())
    assert groups[0].key.remediation == "parameterize-query"


def test_empty_input():
    assert group_flows([], default_rules()) == []


def test_build_report_counts():
    flows = [flow(sink=("Lib.n10/0", 1)), flow(sink=("Lib.n11/0", 1)),
             flow(rule="SQLI", sink=("A.q/0", 3))]
    report = build_report(flows, default_rules())
    assert report.raw_flow_count == 3
    assert report.count() == 2
    xss = report.by_rule()["XSS"][0]
    assert xss.grouped_flows == 2


def test_report_issue_fields():
    report = build_report([flow(carrier=True)], default_rules())
    issue = report.issues[0]
    assert issue.rule == "XSS"
    assert issue.via_carrier
    assert issue.sink_method == "PrintWriter.println"
    assert "A.m/0@5" in issue.lcp


def test_groups_sorted_deterministically():
    flows = [flow(rule="SQLI", sink=("B.x/0", 1)),
             flow(rule="XSS", sink=("A.x/0", 1))]
    groups = group_flows(flows, default_rules())
    assert [g.rule for g in groups] == ["SQLI", "XSS"]


def test_render_text_mentions_counts():
    from repro.reporting import render_text
    report = build_report([flow()], default_rules())
    text = render_text(report)
    assert "XSS" in text and "1 issue" in text


def test_render_text_empty_report():
    from repro.reporting import render_text
    report = build_report([], default_rules())
    assert "No tainted flows" in render_text(report)

"""SARIF export tests."""

import json

from repro import TAJ, TAJConfig, default_rules
from repro.reporting import render_sarif, to_sarif

APP = """
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("p"));
  }
}
"""


def make_report():
    return TAJ(TAJConfig.hybrid_unbounded()).analyze_sources([APP]).report


def test_sarif_structure():
    log = to_sarif(make_report(), default_rules())
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-taj"
    assert len(run["results"]) == 1


def test_sarif_result_fields():
    log = to_sarif(make_report(), default_rules())
    result = log["runs"][0]["results"][0]
    assert result["ruleId"] == "XSS"
    assert result["level"] == "error"
    assert "PrintWriter.println" in result["message"]["text"]
    related = result["relatedLocations"]
    labels = [loc["message"]["text"] for loc in related]
    assert any("source" in label for label in labels)
    assert any("LCP" in label for label in labels)


def test_sarif_rules_include_defaults():
    log = to_sarif(make_report(), default_rules())
    ids = {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]}
    assert {"XSS", "SQLI", "MALICIOUS_FILE", "INFO_LEAK"} <= ids


def test_render_sarif_is_valid_json():
    text = render_sarif(make_report(), default_rules())
    payload = json.loads(text)
    assert payload["runs"][0]["results"]


def test_empty_report():
    from repro.reporting import Report
    log = to_sarif(Report())
    assert log["runs"][0]["results"] == []


def test_cli_sarif_flag(tmp_path, capsys):
    from repro.cli import main
    path = tmp_path / "app.jlang"
    path.write_text(APP)
    main(["--sarif", str(path)])
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"

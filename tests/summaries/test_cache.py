"""Summary-cache robustness: a cache must never change *what* is
computed, only *whether* it is recomputed.  Foreign, corrupt, or
truncated state always degrades to a clean cold start (mirroring the
checkpoint-journal contract in ``tests/parallel/test_checkpoint.py``)."""

import json
import os
import threading

from repro.summaries import SUMMARY_SCHEMA, SummaryCache
from repro.summaries.cache import META_NAME, SUMMARIES_NAME

FP = "fp-current"

HIT = ["wformal", ["M.m", 3], None, "sink()", 2, None, 0, "v", "p0", None]


def make(directory, fingerprint=FP, max_entries=1024) -> SummaryCache:
    cache = SummaryCache(str(directory), fingerprint,
                         max_entries=max_entries)
    cache.load()
    return cache


def test_round_trip(tmp_path):
    cache = make(tmp_path)
    cache.put("k1", "A.f", {"p0": [HIT], "p1": []})
    reread = make(tmp_path)
    assert reread.reset_reason is None
    entry = reread.get("k1")
    assert entry == {"method": "A.f", "hits": {"p0": [HIT], "p1": []}}
    assert reread.get("absent") is None


def test_fresh_directory_is_cold_not_stale(tmp_path):
    cache = make(tmp_path / "new")
    assert cache.entries == {}
    assert cache.stale == 0
    assert cache.reset_reason is None
    assert os.path.exists(cache.meta_path)


def test_foreign_fingerprint_resets_cold(tmp_path):
    make(tmp_path, fingerprint="fp-old").put("k1", "A.f", {"p0": [HIT]})
    cache = make(tmp_path, fingerprint=FP)
    assert cache.entries == {}
    assert "foreign" in cache.reset_reason
    assert cache.stale == 1
    # The reset rewrote the identity: a reload under the new
    # fingerprint is a plain cold cache, not another reset.
    again = make(tmp_path, fingerprint=FP)
    assert again.reset_reason is None


def test_unsupported_schema_resets_cold(tmp_path):
    make(tmp_path)
    meta_path = tmp_path / META_NAME
    meta_path.write_text(json.dumps(
        {"schema": SUMMARY_SCHEMA + 1, "fingerprint": FP}))
    cache = make(tmp_path)
    assert cache.entries == {}
    assert "schema" in cache.reset_reason


def test_corrupt_meta_resets_cold(tmp_path):
    make(tmp_path).put("k1", "A.f", {"p0": [HIT]})
    (tmp_path / META_NAME).write_text("{not json")
    cache = make(tmp_path)
    assert cache.entries == {}
    assert "unreadable" in cache.reset_reason


def test_crash_truncated_tail_is_skipped_silently(tmp_path):
    cache = make(tmp_path)
    cache.put("k1", "A.f", {"p0": [HIT]})
    cache.put("k2", "B.g", {"p0": []})
    with open(tmp_path / SUMMARIES_NAME, "a", encoding="utf-8") as fh:
        fh.write('{"schema": 1, "key": "k3", "met')  # no newline: crash
    reread = make(tmp_path)
    assert set(reread.entries) == {"k1", "k2"}
    # The unterminated line never finished existing — not stale.
    assert reread.stale == 0


def test_terminated_malformed_row_is_dropped_and_counted(tmp_path):
    cache = make(tmp_path)
    cache.put("k1", "A.f", {"p0": [HIT]})
    with open(tmp_path / SUMMARIES_NAME, "a", encoding="utf-8") as fh:
        fh.write("{broken json}\n")
        fh.write(json.dumps({"schema": SUMMARY_SCHEMA, "key": "k2",
                             "method": "B.g", "hits": {}}) + "\n")
    reread = make(tmp_path)
    assert set(reread.entries) == {"k1", "k2"}
    assert reread.stale == 1


def test_wrong_shape_rows_are_stale_not_fatal(tmp_path):
    make(tmp_path)
    rows = [
        json.dumps([1, 2, 3]),                                # not a dict
        json.dumps({"schema": 999, "key": "x"}),              # bad schema
        json.dumps({"schema": SUMMARY_SCHEMA, "key": 7,
                    "method": "A.f", "hits": {}}),            # bad key
        json.dumps({"schema": SUMMARY_SCHEMA, "key": "ok",
                    "method": "A.f", "hits": {"p0": []}}),
    ]
    (tmp_path / SUMMARIES_NAME).write_text("\n".join(rows) + "\n")
    cache = make(tmp_path)
    assert set(cache.entries) == {"ok"}
    assert cache.stale == 3


def test_duplicate_keys_merge_per_formal(tmp_path):
    make(tmp_path)
    path = tmp_path / SUMMARIES_NAME
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"schema": SUMMARY_SCHEMA, "key": "k",
                             "method": "A.f",
                             "hits": {"p0": [HIT]}}) + "\n")
        fh.write(json.dumps({"schema": SUMMARY_SCHEMA, "key": "k",
                             "method": "A.f",
                             "hits": {"p1": []}}) + "\n")
    reread = make(tmp_path)
    assert reread.get("k")["hits"] == {"p0": [HIT], "p1": []}


def test_put_extends_only_fresh_formals(tmp_path):
    cache = make(tmp_path)
    cache.put("k", "A.f", {"p0": [HIT]})
    cache.put("k", "A.f", {"p0": [], "p1": []})
    assert cache.get("k")["hits"] == {"p0": [HIT], "p1": []}
    # And the on-disk rows merge back to the same view.
    assert make(tmp_path).get("k")["hits"] == {"p0": [HIT], "p1": []}


def test_eviction_drops_oldest_and_compacts(tmp_path):
    cache = make(tmp_path, max_entries=3)
    for i in range(5):
        cache.put(f"k{i}", f"M{i}.f", {"p0": []})
    assert set(cache.entries) == {"k2", "k3", "k4"}
    assert cache.evicted == 2
    lines = (tmp_path / SUMMARIES_NAME).read_text().strip().split("\n")
    assert len(lines) == 3  # compacted, not just forgotten
    reread = make(tmp_path, max_entries=3)
    assert set(reread.entries) == {"k2", "k3", "k4"}


def test_drop_forgets_in_memory_and_after_compaction(tmp_path):
    cache = make(tmp_path)
    cache.put("k1", "A.f", {"p0": [HIT]})
    cache.put("k2", "B.g", {"p0": []})
    cache.drop("k1")
    assert cache.get("k1") is None
    cache._compact()
    assert set(make(tmp_path).entries) == {"k2"}


def test_concurrent_writers_interleave_whole_lines(tmp_path):
    """Line-atomic appends: parallel writers to one directory never
    corrupt each other; the reader sees every completed entry."""
    make(tmp_path)  # settle meta.json before the writers race

    def writer(tag):
        cache = make(tmp_path)
        for i in range(50):
            cache.put(f"{tag}-{i}", f"{tag}.m{i}", {"p0": [HIT]})

    threads = [threading.Thread(target=writer, args=(t,))
               for t in ("a", "b", "c")]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    reread = make(tmp_path)
    assert reread.stale == 0
    assert len(reread.entries) == 150
    for tag in ("a", "b", "c"):
        assert reread.get(f"{tag}-49")["hits"] == {"p0": [HIT]}

"""Summary-backend engine tests: warm runs are byte-identical to cold
and to the hybrid reference, cache hits actually happen, stale entries
degrade to live exploration, and the facade/CLI wiring publishes the
``summary.cache.*`` counters."""

import json

import pytest

from repro.bounds import Budget
from repro.core import TAJ, TAJConfig
from repro.modeling import default_natives, prepare
from repro.obs import Observability
from repro.pointer import ContextPolicy, PointerAnalysis
from repro.pointer.heapgraph import HeapGraph
from repro.sdg.hsdg import DirectEdges
from repro.sdg.noheap import NoHeapSDG
from repro.summaries import SummaryBackend
from repro.summaries.cache import SUMMARIES_NAME
from repro.taint import TaintEngine, default_rules

# A helper deep enough to give the tabulator balanced regions to seal:
# taint crosses Library.identity and Library.wrap on the way to two
# different sinks.
APP = """
class Library {
  String identity(String v) { return v; }
  String wrap(String v) { return "[" + this.identity(v) + "]"; }
}
class Front extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Library lib = new Library();
    resp.getWriter().println(lib.wrap(req.getParameter("a")));
  }
}
class Back extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Library lib = new Library();
    Connection c = DriverManager.getConnection("db");
    c.createStatement().executeQuery(lib.identity(req.getParameter("q")));
  }
}
"""


@pytest.fixture(scope="module")
def pieces():
    prepared = prepare([APP])
    analysis = PointerAnalysis(prepared.program, ContextPolicy(),
                               natives=default_natives())
    analysis.solve()
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    return sdg, DirectEdges(sdg, analysis), HeapGraph(analysis)


def run(pieces, strategy, backend=None, obs=None):
    sdg, direct, heap = pieces
    if backend is not None:
        backend.prepare(sdg)
    engine = TaintEngine(sdg, direct, heap, default_rules(), Budget(),
                         strategy=strategy, summary_backend=backend,
                         obs=obs)
    return engine.run()


def keys(result):
    return [f.sort_key() for f in result.flows]


def test_cold_warm_and_hybrid_agree(pieces, tmp_path):
    ref = run(pieces, "hybrid")
    assert ref.flows, "fixture app must produce flows"
    backend = SummaryBackend(str(tmp_path))
    cold = run(pieces, "summary", backend)
    assert keys(cold) == keys(ref)
    assert backend.hits == 0 and backend.misses > 0

    warm = run(pieces, "summary", backend)        # in-memory warm
    assert keys(warm) == keys(ref)
    assert backend.hits > 0

    fresh = SummaryBackend(str(tmp_path))         # disk-only warm
    warm2 = run(pieces, "summary", fresh)
    assert keys(warm2) == keys(ref)
    assert fresh.hits > 0
    assert warm2.completed_rules == ref.completed_rules


def test_no_cache_dir_degrades_to_pure_hybrid(pieces):
    ref = run(pieces, "hybrid")
    backend = SummaryBackend(None)
    result = run(pieces, "summary", backend)
    assert keys(result) == keys(ref)
    assert backend.hits == backend.misses == 0


def test_stale_entries_fall_back_to_live_exploration(pieces, tmp_path):
    ref = run(pieces, "hybrid")
    cold_backend = SummaryBackend(str(tmp_path))
    run(pieces, "summary", cold_backend)
    # Poison every cached statement reference: rebinding must fail and
    # the region re-explore live, never serve garbage.
    path = tmp_path / SUMMARIES_NAME
    rows = [json.loads(line) for line in
            path.read_text().strip().split("\n")]
    for row in rows:
        for hit_rows in row["hits"].values():
            for hit in hit_rows:
                if hit[1] is not None:
                    hit[1] = [hit[1][0], 999999]
    path.write_text("".join(json.dumps(r) + "\n" for r in rows))
    backend = SummaryBackend(str(tmp_path))
    result = run(pieces, "summary", backend)
    assert keys(result) == keys(ref)
    assert backend.stale > 0


def test_publish_counters_reach_metrics(pieces, tmp_path):
    backend = SummaryBackend(str(tmp_path))
    run(pieces, "summary", backend)
    obs = Observability()
    result = run(pieces, "summary", backend, obs=obs)
    snapshot = obs.metrics.snapshot()["counters"]
    assert snapshot["summary.cache.hits"] == backend.hits > 0
    assert snapshot["summary.cache.misses"] == backend.misses
    assert result.flows


def test_taj_facade_warm_run_hits(tmp_path):
    config = TAJConfig.hybrid_optimized().with_summary_cache(
        str(tmp_path / "cache"))
    assert config.slicing == "summary"
    first = TAJ(config).analyze_sources([APP])
    second = TAJ(config).analyze_sources([APP])   # fresh TAJ: disk warm
    assert [f.sort_key() for f in first.flows] == \
        [f.sort_key() for f in second.flows]
    cold = first.metrics["counters"]
    warm = second.metrics["counters"]
    assert cold.get("summary.cache.hits", 0) == 0
    assert warm["summary.cache.hits"] > 0


def test_one_taj_instance_reuses_backend_across_apps(tmp_path):
    taj = TAJ(TAJConfig.summary(str(tmp_path / "cache")))
    first = taj.analyze_sources([APP])
    second = taj.analyze_sources([APP])
    assert taj._summary_backend is not None
    assert second.metrics["counters"]["summary.cache.hits"] > 0
    assert [f.sort_key() for f in first.flows] == \
        [f.sort_key() for f in second.flows]


def test_cli_summary_strategy_round_trip(tmp_path, capsys):
    from repro.cli import main
    app = tmp_path / "app.jlang"
    app.write_text(APP)
    cache = tmp_path / "cache"
    code = main(["--strategy", "summary", "--summary-cache", str(cache),
                 "--json", str(app)])
    cold = json.loads(capsys.readouterr().out)
    assert code == 1
    code = main(["--strategy", "summary", "--summary-cache", str(cache),
                 "--json", str(app)])
    warm = json.loads(capsys.readouterr().out)
    assert code == 1
    assert (cache / SUMMARIES_NAME).exists()
    assert [i["rule"] for i in warm["issues"]] == \
        [i["rule"] for i in cold["issues"]]

"""CLI behaviour on broken inputs: structured diagnostics, no tracebacks.

The corpus covers all three frontend failure stages — lexing, parsing,
and lowering — plus the ``--keep-going`` / ``--deadline`` resilience
flags and the 0/1/2 exit-code contract.
"""

import json

import pytest

from repro.cli import main

GOOD = """
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("p"));
  }
}
"""

# One broken source per frontend stage.
CORPUS = {
    "lex": 'class L { void m() { String s = "unterminated; } }',
    "parse": "class P { void m( { } }",
    "lower": "class W { void m() { break; } }",
}


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


@pytest.mark.parametrize("stage", sorted(CORPUS))
def test_broken_source_exits_two_with_diagnostic(stage, tmp_path,
                                                 capsys):
    path = write(tmp_path, f"{stage}.jlang", CORPUS[stage])
    code = main([path])
    captured = capsys.readouterr()
    assert code == 2
    assert "[frontend]" in captured.err
    assert path in captured.err, "diagnostic names the offending file"
    assert "Traceback" not in captured.err + captured.out


@pytest.mark.parametrize("stage", sorted(CORPUS))
def test_keep_going_quarantines_and_analyzes_the_rest(stage, tmp_path,
                                                      capsys):
    broken = write(tmp_path, f"{stage}.jlang", CORPUS[stage])
    good = write(tmp_path, "good.jlang", GOOD)
    code = main(["--keep-going", broken, good])
    captured = capsys.readouterr()
    assert code == 1, "partial run with issues exits 1, not 2"
    assert "XSS" in captured.out, "the healthy file is still analyzed"
    assert broken in captured.err and "[frontend]" in captured.err
    assert "Traceback" not in captured.err + captured.out


def test_keep_going_json_payload_carries_resilience_record(tmp_path,
                                                           capsys):
    broken = write(tmp_path, "broken.jlang", CORPUS["parse"])
    good = write(tmp_path, "good.jlang", GOOD)
    code = main(["--keep-going", "--json", broken, good])
    captured = capsys.readouterr()
    payload = json.loads(captured.out)
    assert code == 1
    assert payload["completeness"] == "partial-fault"
    assert payload["diagnostics"], "quarantine leaves a diagnostic"
    assert payload["diagnostics"][0]["phase"] == "frontend"
    assert payload["issues"][0]["rule"] == "XSS"


def test_deadline_flag_on_healthy_run(tmp_path, capsys):
    good = write(tmp_path, "good.jlang", GOOD)
    code = main(["--deadline", "3600", good])
    out = capsys.readouterr().out
    assert code == 1
    assert "XSS" in out


def test_expired_deadline_exits_one_as_partial(tmp_path, capsys):
    good = write(tmp_path, "good.jlang", GOOD)
    code = main(["--deadline", "0", good])
    captured = capsys.readouterr()
    assert code == 1, "a partial (deadline) run is not a failure"
    assert "partial-deadline" in captured.out
    assert "Traceback" not in captured.err + captured.out


# -- --fault-plan (docs/robustness.md) ----------------------------------------

def test_fault_plan_malformed_file_exits_two(tmp_path, capsys):
    good = write(tmp_path, "good.jlang", GOOD)
    plan = write(tmp_path, "plan.json", "{not json")
    code = main(["--fault-plan", plan, good])
    captured = capsys.readouterr()
    assert code == 2
    assert "invalid fault plan" in captured.err
    assert "Traceback" not in captured.err + captured.out


def test_fault_plan_missing_file_exits_two(tmp_path, capsys):
    good = write(tmp_path, "good.jlang", GOOD)
    code = main(["--fault-plan", str(tmp_path / "absent.json"), good])
    captured = capsys.readouterr()
    assert code == 2
    assert "invalid fault plan" in captured.err


def test_fault_plan_unknown_action_exits_two(tmp_path, capsys):
    good = write(tmp_path, "good.jlang", GOOD)
    plan = write(tmp_path, "plan.json",
                 json.dumps([{"seam": "worker.shard",
                              "action": "explode"}]))
    code = main(["--fault-plan", plan, good])
    captured = capsys.readouterr()
    assert code == 2
    assert "invalid fault plan" in captured.err


def test_fault_plan_crash_recovery_keeps_report_exit_code(tmp_path,
                                                          capsys):
    """A recovered worker crash reports exactly like the clean run:
    exit 1 (issues found), identical stdout, no traceback."""
    good = write(tmp_path, "good.jlang", GOOD)
    two = write(tmp_path, "two.jlang",
                GOOD.replace("class S", "class T"))
    clean_code = main([good, two])
    clean_out = capsys.readouterr().out
    plan = write(tmp_path, "plan.json",
                 json.dumps([{"seam": "worker.shard", "at": 0,
                              "action": "kill-worker",
                              "attempts": 1}]))
    code = main(["--jobs", "2", "--fault-plan", plan, good, two])
    captured = capsys.readouterr()
    assert clean_code == 1 and code == 1
    assert captured.out == clean_out
    assert "Traceback" not in captured.err + captured.out

"""End-to-end resilience: seams, degradation ladder, quarantine.

The injection matrix mirrors ``benchmarks/fault_injection.py`` (the CI
sweep) on one app so the contract is also enforced by the tier-1 suite:
a scripted fault at any pipeline seam yields a TAJResult with
diagnostics and a truthful completeness verdict — never a traceback.
"""

import pytest

from repro.core import TAJ, TAJConfig
from repro.lang.errors import SourceError
from repro.resilience import Fault, FaultPlan

APP = """
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("p"));
    Connection c = DriverManager.getConnection("db");
    c.createStatement().executeQuery("q" + req.getParameter("u"));
  }
}
"""

BROKEN = "class Broken { this is not jlang @@"

HELPER = """
class Util { static String id(String v) { return v; } }
"""


def run_with_fault(fault, config=None, deadline=3600.0):
    config = config or TAJConfig.hybrid_optimized()
    config = config.with_resilience(deadline_seconds=deadline,
                                    resilient=True)
    return TAJ(config, faults=FaultPlan.of(fault)).analyze_sources([APP])


# -- the injection matrix (every seam) -----------------------------------------

MATRIX = [
    (Fault("frontend.source", action="raise", exception="source"),
     None, {"partial-fault"}),
    (Fault("frontend.source", action="corrupt"),
     None, {"partial-fault"}),
    (Fault("modeling.pass", action="raise"), None, {"failed"}),
    (Fault("pointer.solve", action="raise"), None, {"failed"}),
    (Fault("pointer.solve", action="trip-deadline"),
     None, {"partial-deadline"}),
    (Fault("sdg.build", action="raise"), None, {"failed"}),
    (Fault("tabulation.step", action="raise"), None, {"partial-fault"}),
    (Fault("slicing.hybrid", action="raise", exception="budget"),
     None, {"partial-budget"}),
    (Fault("slicing.cs", action="raise", exception="budget"),
     TAJConfig.cs(), {"partial-budget"}),
    (Fault("slicing.ci", action="raise"), TAJConfig.ci(),
     {"partial-fault"}),
    (Fault("ci.step", action="trip-deadline"), TAJConfig.ci(),
     {"partial-deadline", "partial-fault"}),
    (Fault("reporting.build", action="raise"), None, {"partial-fault"}),
]


@pytest.mark.parametrize(
    "fault,config,expected", MATRIX,
    ids=[f"{f.seam}-{f.action}-{f.exception}" for f, _, _ in MATRIX])
def test_every_seam_fault_is_absorbed(fault, config, expected):
    result = run_with_fault(fault, config)
    assert result.completeness in expected
    assert result.diagnostics or result.degradations, \
        "an absorbed fault must not be silent"


def test_matrix_covers_at_least_eight_seams():
    assert len({f.seam for f, _, _ in MATRIX}) >= 8


# -- degradation ladder --------------------------------------------------------

def test_cs_state_budget_walks_ladder_and_keeps_flows():
    """The acceptance scenario: a CS run tripping its state budget
    reports flows (via the hybrid fallback) with the rung recorded."""
    config = TAJConfig.cs(max_state_units=5).with_resilience(
        resilient=True)
    result = TAJ(config).analyze_sources([APP])
    assert not result.failed
    assert result.completeness == "partial-budget"
    assert result.issues >= 1, "fallback still finds the planted flows"
    rungs = [(d.trigger, d.fallback) for d in result.degradations]
    assert ("budget", "hybrid") in rungs
    assert result.metrics["counters"]["resilience.degradations"] >= 1


def test_parallel_worker_walks_ladder_per_rule():
    """With --jobs, a budget trip degrades the tripped worker's rule,
    not the whole run — and the worker's degradation records are
    replayed into the parent's completeness verdict."""
    config = TAJConfig.cs(max_state_units=5).with_resilience(
        resilient=True).with_jobs(2)
    result = TAJ(config).analyze_sources([APP])
    assert not result.failed
    assert result.completeness == "partial-budget"
    assert result.issues >= 1
    rungs = [(d.trigger, d.fallback) for d in result.degradations]
    assert ("budget", "hybrid") in rungs
    # The serial ladder run must report the same issues.
    serial = TAJ(TAJConfig.cs(max_state_units=5).with_resilience(
        resilient=True)).analyze_sources([APP])
    canon = lambda res: sorted((i.rule, i.source, i.sink)
                               for i in res.report.issues)
    assert canon(result) == canon(serial)


def test_cs_state_budget_without_ladder_still_fails():
    """resilient=False preserves the paper's CS OOM reproduction."""
    config = TAJConfig.cs(max_state_units=5)
    result = TAJ(config).analyze_sources([APP])
    assert result.failed
    assert result.completeness == "failed"
    assert result.issues == 0


def test_mid_sweep_budget_keeps_completed_rule_flows():
    """Rule 1 completes on the primary strategy; the injected budget
    trip on rule 2 falls back without discarding rule 1's flows."""
    fault = Fault("slicing.hybrid", at=1, exception="budget")
    result = run_with_fault(fault)
    assert result.completeness == "partial-budget"
    assert {f.rule for f in result.flows} == {"XSS", "SQLI"}
    assert [(d.trigger, d.fallback) for d in result.degradations] == \
        [("budget", "ci")]


def test_expired_deadline_yields_partial_result():
    config = TAJConfig.hybrid_optimized().with_resilience(
        deadline_seconds=0.0, resilient=True)
    result = TAJ(config).analyze_sources([APP])
    assert result.completeness == "partial-deadline"
    assert not result.failed
    assert result.degradations
    gauge = result.metrics["gauges"][
        "resilience.deadline_remaining_seconds"]
    assert gauge == 0.0


def test_generous_deadline_changes_nothing():
    config = TAJConfig.hybrid_optimized().with_resilience(
        deadline_seconds=3600.0, resilient=True)
    result = TAJ(config).analyze_sources([APP])
    assert result.completeness == "complete"
    assert result.degradations == [] and result.diagnostics == []
    assert result.issues >= 1
    gauge = result.metrics["gauges"][
        "resilience.deadline_remaining_seconds"]
    assert 0.0 < gauge <= 3600.0


# -- frontend quarantine -------------------------------------------------------

def test_broken_source_quarantined_rest_analyzed():
    config = TAJConfig.hybrid_optimized().with_resilience(resilient=True)
    result = TAJ(config).analyze_sources([HELPER, BROKEN, APP])
    assert result.completeness == "partial-fault"
    assert result.issues >= 1, "the healthy servlet is still analyzed"
    assert [d.source_index for d in result.diagnostics] == [1]
    assert result.diagnostics[0].phase == "frontend"
    assert result.diagnostics[0].kind == "source-error"
    counters = result.metrics["counters"]
    assert counters["resilience.quarantined_sources"] == 1


def test_lower_failure_quarantines_whole_unit():
    # Both classes live in one unit; the duplicate definition fails the
    # unit, quarantining its sibling class too.
    dup = HELPER + "\nclass Util { }"
    config = TAJConfig.hybrid_optimized().with_resilience(resilient=True)
    result = TAJ(config).analyze_sources([dup, APP])
    assert result.completeness == "partial-fault"
    assert result.issues >= 1
    assert any(d.source_index == 0 for d in result.diagnostics)


def test_strict_mode_still_raises_on_broken_source():
    with pytest.raises(SourceError):
        TAJ(TAJConfig.hybrid_optimized()).analyze_sources([BROKEN])


# -- legacy equivalence --------------------------------------------------------

def test_default_run_reports_complete():
    result = TAJ(TAJConfig.hybrid_optimized()).analyze_sources([APP])
    assert result.completeness == "complete"
    assert result.degradations == []
    assert result.diagnostics == []

"""Fault-plan and injector unit tests: firing must be deterministic."""

import pytest

from repro.bounds import BudgetExhausted
from repro.lang.errors import SourceError
from repro.resilience import (Deadline, DeadlineExceeded, Fault,
                              FaultInjector, FaultPlan, InjectedFault)


def test_fault_validation():
    with pytest.raises(ValueError):
        Fault("pointer.solve", action="explode")
    with pytest.raises(ValueError):
        Fault("pointer.solve", exception="oom")


def test_plan_round_trips_through_dicts():
    plan = FaultPlan.of(
        Fault("tabulation.step", at=3, exception="budget"),
        Fault("frontend.source", action="corrupt", message="junk"))
    clone = FaultPlan.from_dicts(plan.to_dicts())
    assert clone.to_dicts() == plan.to_dicts()
    assert bool(plan) and not bool(FaultPlan())


def test_injector_fires_on_exact_tick_only():
    plan = FaultPlan.of(Fault("pointer.solve", at=2))
    injector = FaultInjector(plan)
    injector.visit("pointer.solve")           # tick 0
    injector.visit("pointer.solve")           # tick 1
    with pytest.raises(InjectedFault):
        injector.visit("pointer.solve")       # tick 2: fires
    injector.visit("pointer.solve")           # tick 3: spent
    assert len(injector.fired) == 1


def test_injector_ticks_are_per_seam():
    plan = FaultPlan.of(Fault("slicing.cs", at=1))
    injector = FaultInjector(plan)
    injector.visit("slicing.cs")
    injector.visit("slicing.hybrid")          # other seams don't advance
    injector.visit("tabulation.step")
    with pytest.raises(InjectedFault):
        injector.visit("slicing.cs")


def test_exception_kinds():
    assert isinstance(Fault("x", exception="budget").build_exception(),
                      BudgetExhausted)
    assert isinstance(Fault("x", exception="deadline").build_exception(),
                      DeadlineExceeded)
    assert isinstance(Fault("x", exception="source").build_exception(),
                      SourceError)
    assert isinstance(Fault("x").build_exception(), InjectedFault)


def test_corrupt_replaces_payload():
    plan = FaultPlan.of(Fault("frontend.source", action="corrupt",
                              message="not jlang"))
    injector = FaultInjector(plan)
    assert injector.visit("frontend.source",
                          payload="class A {}") == "not jlang"


def test_trip_deadline_action():
    plan = FaultPlan.of(Fault("tabulation.step",
                              action="trip-deadline"))
    injector = FaultInjector(plan)
    deadline = Deadline(3600.0)
    injector.visit("tabulation.step", deadline)
    assert deadline.expired(), "scripted trip expires the deadline"


def test_same_plan_replays_identically():
    plan = FaultPlan.of(Fault("ci.step", at=5))
    for _ in range(3):
        injector = FaultInjector(plan)
        for tick in range(5):
            injector.visit("ci.step")
        with pytest.raises(InjectedFault):
            injector.visit("ci.step")


# -- process-seam faults (worker.*, docs/robustness.md) -----------------------

def test_process_fault_validation():
    """Process actions pair only with process seams, and vice versa."""
    with pytest.raises(ValueError):
        Fault("pointer.solve", action="kill-worker")
    with pytest.raises(ValueError):
        Fault("worker.shard", action="raise")
    assert Fault("worker.shard", action="kill-worker").is_process()
    assert Fault("worker.init", action="hang-worker").is_process()
    assert not Fault("pointer.solve").is_process()


def test_process_fault_attempts_round_trip():
    plan = FaultPlan.of(Fault("worker.shard", at=0,
                              action="corrupt-outcome", attempts=-1))
    clone = FaultPlan.from_dicts(plan.to_dicts())
    assert clone.faults[0].attempts == -1
    assert clone.to_dicts() == plan.to_dicts()


def test_matches_attempt_is_positional_and_bounded():
    """Matching is by shard position and attempt count — never by
    visit order — so it replays identically under any worker
    scheduling."""
    bounded = Fault("worker.shard", at=2, action="kill-worker",
                    attempts=2)
    assert bounded.matches_attempt(2, 0)
    assert bounded.matches_attempt(2, 1)
    assert not bounded.matches_attempt(2, 2), "retry budget respected"
    assert not bounded.matches_attempt(1, 0), "wrong shard"
    everywhere = Fault("worker.shard", at=-1, action="kill-worker",
                       attempts=-1)
    assert everywhere.matches_attempt(0, 0)
    assert everywhere.matches_attempt(7, 99)


def test_injector_process_fault_lookup_records_fired():
    plan = FaultPlan.of(Fault("worker.shard", at=1,
                              action="kill-worker", attempts=1))
    injector = FaultInjector(plan)
    assert injector.process_fault("worker.shard", 0, 0) is None
    fault = injector.process_fault("worker.shard", 1, 0)
    assert fault is not None and fault.action == "kill-worker"
    assert injector.process_fault("worker.shard", 1, 1) is None
    assert len(injector.fired) == 1, "only matches are recorded"


def test_visit_never_fires_process_faults():
    """The cooperative seam walker skips process faults entirely —
    a worker.shard fault must never raise inside the parent's
    pipeline."""
    plan = FaultPlan.of(Fault("worker.shard", at=-1,
                              action="kill-worker", attempts=-1))
    injector = FaultInjector(plan)
    for _ in range(3):
        injector.visit("worker.shard")  # no InjectedFault, no SIGKILL

"""Harness isolation: one broken app cannot take down the sweep."""

import pytest

from repro.bench import generate_suite, run_suite
from repro.bench.generator import AppSpec, GeneratedApp, PlantedFlow
from repro.core import TAJConfig


def broken_app(name="Broken"):
    planted = [PlantedFlow(kind="tp", rule="XSS",
                           sink_method="Broken.sink", app=name)]
    return GeneratedApp(spec=AppSpec(name=name),
                        sources=["class Broken { not jlang @@"],
                        planted=planted,
                        deployment_descriptor={})


@pytest.fixture(scope="module")
def mixed_results():
    apps = generate_suite(["I"])
    apps["Broken"] = broken_app()
    configs = [TAJConfig.hybrid_optimized(), TAJConfig.ci()]
    return run_suite(apps, configs=configs)


def test_broken_app_yields_failure_records(mixed_results):
    for config in ("hybrid-optimized", "ci"):
        rec = mixed_results.cell("Broken", config)
        assert rec is not None, "the row exists despite the crash"
        assert rec.failed and rec.completeness == "failed"
        assert rec.error and "LexError" in rec.error
        assert rec.score.fn == 1, "planted flows count as missed"


def test_other_apps_still_scored(mixed_results):
    rec = mixed_results.cell("I", "hybrid-optimized")
    assert rec is not None and not rec.failed
    assert rec.completeness == "complete"
    assert rec.degradations == []
    assert rec.error is None


def test_isolation_can_be_disabled_for_debugging():
    apps = {"Broken": broken_app()}
    with pytest.raises(Exception):
        run_suite(apps, configs=[TAJConfig.ci()], isolate=False)

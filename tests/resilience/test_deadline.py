"""Deadline unit tests (injectable clock makes expiry deterministic)."""

import pytest

from repro.resilience import Deadline, DeadlineExceeded


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_deadline_arms_on_first_use():
    clock = FakeClock()
    deadline = Deadline(5.0, clock=clock)
    clock.advance(1000.0)         # time passes before anyone consumes it
    assert deadline.remaining() == 5.0, "clock starts on first use"
    clock.advance(2.0)
    assert deadline.remaining() == pytest.approx(3.0)
    assert not deadline.expired()


def test_deadline_expires_and_raises():
    clock = FakeClock()
    deadline = Deadline(5.0, clock=clock).start()
    deadline.check("pointer_analysis")        # within budget: no raise
    clock.advance(5.5)
    assert deadline.expired()
    assert deadline.remaining() == 0.0
    with pytest.raises(DeadlineExceeded) as info:
        deadline.check("pointer_analysis")
    assert info.value.phase == "pointer_analysis"
    assert info.value.limit_seconds == 5.0
    assert info.value.elapsed_seconds == pytest.approx(5.5)


def test_trip_forces_expiry_without_time_passing():
    clock = FakeClock()
    deadline = Deadline(100.0, clock=clock).start()
    deadline.trip()
    assert deadline.expired()
    assert deadline.remaining() == 0.0
    with pytest.raises(DeadlineExceeded):
        deadline.check("taint")


def test_remaining_never_negative():
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock).start()
    clock.advance(50.0)
    assert deadline.remaining() == 0.0

"""Direct-edge (HSDG) tests."""

from repro.sdg import DirectEdges
from tests.sdg.test_noheap import build


def edges_for(source):
    program, analysis, sdg = build(source)
    return sdg, DirectEdges(sdg, analysis)


def test_store_matches_aliased_load():
    sdg, direct = edges_for("""
class Box { Object f; }
class Main {
  static void main() {
    Box b = new Box();
    b.f = new Object();
    Object x = b.f;
  }
}""")
    store = sdg.stores_by_field["f"][0]
    loads = direct.loads_for_store(store)
    assert len(loads) == 1
    assert loads[0].fld == "f"


def test_store_does_not_match_other_field():
    sdg, direct = edges_for("""
class Box { Object f; Object g; }
class Main {
  static void main() {
    Box b = new Box();
    b.f = new Object();
    Object x = b.g;
  }
}""")
    store = sdg.stores_by_field["f"][0]
    assert direct.loads_for_store(store) == []


def test_store_does_not_match_unaliased_base():
    sdg, direct = edges_for("""
class Box { Object f; }
class Main {
  static void main() {
    Box b1 = new Box();
    Box b2 = new Box();
    b1.f = new Object();
    Object x = b2.f;
  }
}""")
    store = sdg.stores_by_field["f"][0]
    assert direct.loads_for_store(store) == []


def test_static_fields_match_by_identity():
    sdg, direct = edges_for("""
class Reg { static Object slot; static Object other; }
class Main {
  static void main() {
    Reg.slot = new Object();
    Object a = Reg.slot;
    Object b = Reg.other;
  }
}""")
    store = sdg.stores_by_field["static:Reg.slot"][0]
    loads = direct.loads_for_store(store)
    assert len(loads) == 1


def test_eff_base_override_narrows_matching():
    sdg, direct = edges_for("""
class Box {
  Object f;
  void set(Object v) { this.f = v; }
}
class Main {
  static void main() {
    Box b1 = new Box();
    Box b2 = new Box();
    b1.set(new Object());
    b2.set(new Object());
    Object x = b2.f;
  }
}""")
    store = sdg.stores_by_field["f"][0]   # this.f = v inside set()
    # Collapsed base ("this" over both call contexts) aliases both boxes.
    assert direct.loads_for_store(store)
    # The clone-precise base (b1 at the caller) does not alias b2.
    assert direct.loads_for_store(
        store, eff_base=("Main.main/0", "b1.1")) == []


def test_points_to_is_cached():
    sdg, direct = edges_for("""
class Main {
  static void main() { Object o = new Object(); }
}""")
    first = direct.points_to("Main.main/0", "o.1")
    second = direct.points_to("Main.main/0", "o.1")
    assert first is second

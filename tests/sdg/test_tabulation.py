"""RHS tabulation tests: context-sensitive reachability over the VFG."""

from repro.sdg import RuleAdapter, Tabulator
from repro.taint.rules import SecurityRule
from tests.sdg.test_noheap import build


def make_rule(**kwargs):
    base = dict(name="T", sources={"Src.get"},
                sanitizers={"San.clean"},
                sinks={"Snk.put": (0,)})
    base.update(kwargs)
    return SecurityRule(**base)


LIB_EXTRA = """
library class Src { native Object get(); }
library class San { native static Object clean(Object o); }
library class Snk { native void put(Object o); }
"""


def tabulate(source, rule=None, seeds=None):
    program, analysis, sdg = build(LIB_EXTRA + source)
    rule = rule or make_rule()
    hits = []

    def on_hit(origin, hit):
        hits.append((origin, hit))

    tab = Tabulator(sdg, RuleAdapter(sdg, rule), on_hit)
    for idx, (method, var) in enumerate(seeds):
        tab.seed_origin(f"src:{idx}:{method}", method, var)
    tab.run()
    return hits, tab


def sink_hits(hits):
    return [(o, h) for o, h in hits if h.kind == "sink"]


def test_direct_flow_to_sink():
    hits, _ = tabulate("""
class Main {
  static void main() {
    Src s = new Src();
    Snk k = new Snk();
    Object v = s.get();
    k.put(v);
  }
}""", seeds=[("Main.main/0", "v.1")])
    assert len(sink_hits(hits)) == 1


def test_sanitizer_cuts_flow():
    hits, _ = tabulate("""
class Main {
  static void main() {
    Src s = new Src();
    Snk k = new Snk();
    Object v = San.clean(s.get());
    k.put(v);
  }
}""", seeds=[("Main.main/0", "%t2.1")])
    # seed the raw source result; the sanitizer blocks it.
    assert not sink_hits(hits)


def test_flow_through_callee_and_back():
    hits, _ = tabulate("""
class H { Object id(Object o) { return o; } }
class Main {
  static void main() {
    Src s = new Src();
    Snk k = new Snk();
    H h = new H();
    Object v = s.get();
    Object w = h.id(v);
    k.put(w);
  }
}""", seeds=[("Main.main/0", "v.1")])
    assert len(sink_hits(hits)) == 1


def test_call_return_matching_is_context_sensitive():
    """Tainted data entering id() at one site must not exit at another."""
    hits, _ = tabulate("""
class H { Object id(Object o) { return o; } }
class Main {
  static void main() {
    Src s = new Src();
    Snk k1 = new Snk();
    Snk k2 = new Snk();
    H h = new H();
    Object dirty = s.get();
    Object a = h.id(dirty);
    Object clean = new Object();
    Object b = h.id(clean);
    k1.put(a);
    k2.put(b);
  }
}""", seeds=[("Main.main/0", "dirty.1")])
    sinks = sink_hits(hits)
    assert len(sinks) == 1  # only k1.put(a)


def test_unbalanced_return_reaches_all_callers():
    """A flow starting inside a callee exits to every caller."""
    hits, _ = tabulate("""
class H {
  Object fetch() {
    Src s = new Src();
    return s.get();
  }
}
class Main {
  static void main() {
    H h = new H();
    Snk k = new Snk();
    Object v = h.fetch();
    k.put(v);
  }
}""", seeds=[("H.fetch/0", "%t1.1")])
    assert len(sink_hits(hits)) == 1


def test_store_hit_reported():
    hits, _ = tabulate("""
class Box { Object f; }
class Main {
  static void main() {
    Src s = new Src();
    Box box = new Box();
    Object v = s.get();
    box.f = v;
  }
}""", seeds=[("Main.main/0", "v.1")])
    stores = [(o, h) for o, h in hits if h.kind == "store"]
    assert len(stores) == 1
    assert stores[0][1].store.fld == "f"


def test_store_base_formal_resolved_to_caller_actual():
    hits, _ = tabulate("""
class Box {
  Object f;
  void set(Object v) { this.f = v; }
}
class Main {
  static void main() {
    Src s = new Src();
    Box dirty = new Box();
    Box clean = new Box();
    Object v = s.get();
    dirty.set(v);
  }
}""", seeds=[("Main.main/0", "v.1")])
    stores = [(o, h) for o, h in hits if h.kind == "store"]
    assert stores
    hit = stores[0][1]
    assert hit.eff_base is not None
    method, var = hit.eff_base
    assert method == "Main.main/0"
    assert var.startswith("dirty.")


def test_steps_metadata_grows_along_flow():
    hits, _ = tabulate("""
class Main {
  static void main() {
    Src s = new Src();
    Snk k = new Snk();
    Object v = s.get();
    Object a = v;
    Object b = a;
    Object c = b;
    k.put(c);
  }
}""", seeds=[("Main.main/0", "v.1")])
    sinks = sink_hits(hits)
    assert sinks[0][1].meta.steps >= 3


def test_origin_attribution_is_per_seed():
    hits, _ = tabulate("""
class Main {
  static void main() {
    Src s1 = new Src();
    Src s2 = new Src();
    Snk k = new Snk();
    Object v1 = s1.get();
    Object v2 = s2.get();
    k.put(v1);
    k.put(v2);
  }
}""", seeds=[("Main.main/0", "v1.1"), ("Main.main/0", "v2.1")])
    origins = {o for o, _ in sink_hits(hits)}
    assert len(origins) == 2


def test_recursion_terminates():
    hits, _ = tabulate("""
class R {
  Object spin(Object o, int n) {
    if (n > 0) { return this.spin(o, n - 1); }
    return o;
  }
}
class Main {
  static void main() {
    Src s = new Src();
    Snk k = new Snk();
    R r = new R();
    Object v = s.get();
    Object w = r.spin(v, 5);
    k.put(w);
  }
}""", seeds=[("Main.main/0", "v.1")])
    assert len(sink_hits(hits)) == 1

"""No-heap SDG (VFG) construction tests."""

from repro.ir import validate_program
from repro.lang import lower_source
from repro.pointer import ContextPolicy, PointerAnalysis
from repro.sdg import Fact, NoHeapSDG, RET
from repro.ssa import program_to_ssa

LIB = """
library class Object { }
library class String { }
"""


def build(source, entry="Main.main/0"):
    program = lower_source(LIB + source)
    program.entrypoints.append(entry)
    program_to_ssa(program)
    validate_program(program)
    analysis = PointerAnalysis(program, ContextPolicy())
    analysis.solve()
    return program, analysis, NoHeapSDG(program, analysis.call_graph)


def test_local_def_use_edges():
    _, _, sdg = build("""
class Main {
  static void main() {
    Object a = new Object();
    Object b = a;
  }
}""")
    succs = sdg.succs_of(Fact("Main.main/0", "a.1"))
    assert any(e.dst == "b.1" for e in succs)


def test_load_has_no_local_in_edges():
    _, _, sdg = build("""
class Box { Object f; }
class Main {
  static void main() {
    Box box = new Box();
    Object x = box.f;
  }
}""")
    # No local edge should lead INTO the load's own def: heap reads are
    # only reachable via direct HSDG edges (base-pointer exclusion).
    load_lhs = sdg.loads_by_field["f"][0].lhs
    for fact, edges in sdg.local_succs.items():
        for edge in edges:
            assert edge.dst != load_lhs


def test_store_indexed_by_value_var():
    _, _, sdg = build("""
class Box { Object f; }
class Main {
  static void main() {
    Box box = new Box();
    Object v = new Object();
    box.f = v;
  }
}""")
    stores = sdg.stores_using("Main.main/0", "v.1")
    assert len(stores) == 1
    assert stores[0].fld == "f"


def test_loads_and_stores_indexed_by_field():
    _, _, sdg = build("""
class Box { Object f; }
class Main {
  static void main() {
    Box b1 = new Box();
    b1.f = new Object();
    Object x = b1.f;
  }
}""")
    assert len(sdg.stores_by_field.get("f", [])) == 1
    assert len(sdg.loads_by_field.get("f", [])) == 1


def test_static_fields_use_composite_field_names():
    _, _, sdg = build("""
class Reg { static Object slot; }
class Main {
  static void main() {
    Reg.slot = new Object();
    Object x = Reg.slot;
  }
}""")
    assert "static:Reg.slot" in sdg.stores_by_field
    assert "static:Reg.slot" in sdg.loads_by_field


def test_return_edge_to_ret_fact():
    _, _, sdg = build("""
class Main {
  static Object make() { Object o = new Object(); return o; }
  static void main() { Object x = Main.make(); }
}""")
    succs = sdg.succs_of(Fact("Main.make/0", "o.1"))
    assert any(e.dst == RET for e in succs)


def test_call_sites_resolved_from_call_graph():
    _, _, sdg = build("""
class Helper { Object id(Object o) { return o; } }
class Main {
  static void main() {
    Helper h = new Helper();
    Object x = h.id(new Object());
  }
}""")
    sites = sdg.call_sites["Main.main/0"]
    target_lists = [site.targets for site in sites if site.targets]
    assert ["Helper.id/1"] in target_lists


def test_bindings_map_actuals_to_formals():
    _, _, sdg = build("""
class Helper { Object id(Object o) { return o; } }
class Main {
  static void main() {
    Helper h = new Helper();
    Object x = h.id(new Object());
  }
}""")
    site = next(s for s in sdg.call_sites["Main.main/0"]
                if "Helper.id/1" in s.targets)
    pairs = dict(sdg.bindings(site, "Helper.id/1"))
    assert pairs[site.call.receiver] == "this"
    assert pairs[site.call.args[0]] == "o"


def test_return_bindings():
    _, _, sdg = build("""
class Helper { Object id(Object o) { return o; } }
class Main {
  static void main() {
    Helper h = new Helper();
    Object x = h.id(new Object());
  }
}""")
    site = next(s for s in sdg.call_sites["Main.main/0"]
                if "Helper.id/1" in s.targets)
    assert sdg.return_bindings(site, "Helper.id/1") == [(RET, site.call.lhs)]


def test_callers_of_index():
    _, _, sdg = build("""
class Helper { Object id(Object o) { return o; } }
class Main {
  static void main() {
    Helper h = new Helper();
    Object x = h.id(new Object());
    Object y = h.id(new Object());
  }
}""")
    assert len(sdg.callers_of["Helper.id/1"]) == 2


def test_unreachable_methods_not_indexed():
    _, _, sdg = build("""
class Dead { void never() { Object o = new Object(); } }
class Main {
  static void main() { }
}""")
    assert "Dead.never/0" not in sdg.call_sites


def test_arg_uses_include_receiver_position():
    _, _, sdg = build("""
class Helper { void take(Object o) { } }
class Main {
  static void main() {
    Helper h = new Helper();
    Object v = new Object();
    h.take(v);
  }
}""")
    uses = sdg.calls_using("Main.main/0", "v.1")
    assert uses and uses[0][1] == [0]
    recv_uses = sdg.calls_using("Main.main/0", "h.1")
    assert recv_uses and recv_uses[0][1] == [-1]

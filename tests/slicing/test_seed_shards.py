"""Seed-restricted slicing: the union of disjoint seed shards must
equal the whole-rule slice, for every strategy — the property the
parallel fine grain stands on.  Depends on flow metadata being
witness-relative (``Meta.transitions``), not slicer-global."""

import pytest

from repro.bounds import Budget
from repro.modeling import prepare, default_natives
from repro.pointer import ContextPolicy, PointerAnalysis
from repro.pointer.heapgraph import HeapGraph
from repro.sdg.hsdg import DirectEdges
from repro.sdg.noheap import NoHeapSDG
from repro.sdg.tabulation import Meta
from repro.slicing.base import enumerate_sources
from repro.taint import default_rules, make_slicer

# Two servlets; the heap pattern gives flows a nonzero heap-transition
# count, which is exactly the metadata that used to leak between seeds
# through a slicer-global counter.
APP = """
class Box { String v; }
class A0 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Box b = new Box();
    b.v = req.getParameter("a");
    resp.getWriter().println(b.v);
  }
}
class A1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("b"));
    Connection c = DriverManager.getConnection("db");
    c.createStatement().executeQuery("q" + req.getParameter("u"));
  }
}
"""


@pytest.fixture(scope="module")
def pieces():
    prepared = prepare([APP])
    analysis = PointerAnalysis(prepared.program, ContextPolicy(),
                               natives=default_natives())
    analysis.solve()
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    return sdg, DirectEdges(sdg, analysis), HeapGraph(analysis)


def test_meta_extend_preserves_transitions():
    meta = Meta(3, None, 2)
    longer = meta.extend(4)
    assert longer.steps == 7
    assert longer.transitions == 2
    assert Meta(1).transitions == 0


@pytest.mark.parametrize("strategy", ["hybrid", "ci", "cs"])
def test_seed_shard_union_equals_whole_rule(pieces, strategy):
    sdg, direct, heap = pieces
    for rule in default_rules():
        whole = make_slicer(strategy, sdg, direct, heap,
                            Budget()).slice_rule(rule)
        seeds = enumerate_sources(sdg, rule)
        union = []
        for seed in seeds:
            slicer = make_slicer(strategy, sdg, direct, heap, Budget())
            union.extend(slicer.slice_rule(rule, seeds=[seed]))
        # Flow identity includes the source, so disjoint seed shards
        # cannot collide; sort to canonical order and compare records
        # including length / heap-transition metadata.
        union.sort(key=lambda f: f.sort_key())
        assert [f.sort_key() for f in union] == \
            [f.sort_key() for f in whole]


def test_empty_seed_list_slices_nothing(pieces):
    sdg, direct, heap = pieces
    rule = next(iter(default_rules()))
    slicer = make_slicer("hybrid", sdg, direct, heap, Budget())
    assert slicer.slice_rule(rule, seeds=[]) == []

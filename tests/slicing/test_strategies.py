"""Strategy-differentiation tests: hybrid vs CS vs CI (paper §3.2, §7)."""

import pytest

from repro import TAJ, TAJConfig
from repro.bench.micro import MICRO_CASES, MOTIVATING
from repro.bounds import Budget


def run(config, source, descriptor=None):
    return TAJ(config).analyze_sources([source],
                                       deployment_descriptor=descriptor)


SHARED_HELPER = """
class Ident {
  static String id(String v) { return v; }
}
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String dirty = Ident.id(req.getParameter("p"));
    String clean = Ident.id("constant");
    resp.getWriter().println(clean);
  }
}
"""


def test_hybrid_is_context_sensitive_for_locals():
    result = run(TAJConfig.hybrid_unbounded(), SHARED_HELPER)
    assert result.issues == 0


def test_ci_conflates_shared_helper():
    result = run(TAJConfig.ci(), SHARED_HELPER)
    assert result.issues == 1


def test_cs_is_context_sensitive_for_locals():
    result = run(TAJConfig.cs(), SHARED_HELPER)
    assert result.issues == 0


CROSS_ENTRYPOINT = """
class Registry {
  static String slot;
}
class Writer extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Registry.slot = req.getParameter("p");
  }
}
class Reader extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(Registry.slot);
  }
}
"""


def test_hybrid_heap_is_flow_insensitive_across_entrypoints():
    result = run(TAJConfig.hybrid_unbounded(), CROSS_ENTRYPOINT)
    assert result.issues == 1  # reported (sound for concurrent requests)


def test_ci_also_reports_cross_entrypoint_flow():
    result = run(TAJConfig.ci(), CROSS_ENTRYPOINT)
    assert result.issues == 1


def test_cs_threads_heap_along_calls_only():
    result = run(TAJConfig.cs(), CROSS_ENTRYPOINT)
    assert result.issues == 0  # no call path connects store and load


THREADED = MICRO_CASES["thread_flow"][0]


def test_cs_unsound_for_threads():
    assert run(TAJConfig.cs(), THREADED).issues == 0


def test_hybrid_sound_for_threads():
    assert run(TAJConfig.hybrid_unbounded(), THREADED).issues == 1


def test_ci_sound_for_threads():
    assert run(TAJConfig.ci(), THREADED).issues == 1


def test_cs_memory_budget_failure():
    config = TAJConfig.cs(max_state_units=5)
    result = run(config, MICRO_CASES["heap_flow"][0])
    assert result.failed
    assert result.issues == 0
    assert "state_units" in (result.failure or "")


def test_heap_transition_bound_truncates():
    config = TAJConfig.hybrid_unbounded().with_budget(
        max_heap_transitions=0)
    result = run(config, MICRO_CASES["heap_flow"][0])
    assert result.truncated
    assert result.issues == 0


def test_flow_length_bound_suppresses_long_flows():
    long_chain = """
class Chain {
  static String h0(String v) { return Chain.h1(v + ""); }
  static String h1(String v) { return Chain.h2(v + ""); }
  static String h2(String v) { return Chain.h3(v + ""); }
  static String h3(String v) { return v + ""; }
}
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(Chain.h0(req.getParameter("p")));
  }
}
"""
    unbounded = run(TAJConfig.hybrid_unbounded(), long_chain)
    assert unbounded.issues == 1
    tight = run(TAJConfig.hybrid_unbounded().with_budget(
        max_flow_length=3), long_chain)
    assert tight.issues == 0
    assert tight.stats["suppressed_by_length"] >= 0


def test_nested_depth_bound_misses_deep_carrier():
    deep = MICRO_CASES["taint_carrier"][0]
    # taint_carrier stores at depth 1: both settings find it.
    assert run(TAJConfig.hybrid_unbounded(), deep).issues == 1
    shallow = TAJConfig.hybrid_unbounded().with_budget(max_nested_depth=1)
    assert run(shallow, deep).issues == 1


def test_deep_nesting_beyond_bound():
    source = """
class L3 { String s; }
class L2 { L3 c; L2() { this.c = new L3(); } }
class L1 { L2 c; L1() { this.c = new L2(); } }
class L0 { L1 c; L0() { this.c = new L1(); } }
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    L0 box = new L0();
    L1 a = box.c;
    L2 b = a.c;
    L3 d = b.c;
    d.s = req.getParameter("p");
    resp.getWriter().println(box);
  }
}
"""
    assert run(TAJConfig.hybrid_unbounded(), source).issues == 1
    bounded = TAJConfig.hybrid_unbounded().with_budget(max_nested_depth=2)
    assert run(bounded, source).issues == 0


def test_motivating_example_per_strategy(motivating_hybrid, motivating_ci,
                                         motivating_cs):
    # The paper's Figure 1: one real issue; CI conflates the reflective
    # id() calls and reports all three printlns.
    assert motivating_hybrid.issues == 1
    assert motivating_cs.issues == 1
    assert motivating_ci.issues == 3


def test_all_flows_same_sink_method(motivating_ci):
    sinks = {i.sink_method for i in motivating_ci.report.issues}
    assert sinks == {"PrintWriter.println"}

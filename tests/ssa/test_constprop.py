"""Constant-propagation tests (feeds reflection + dictionary models)."""

from repro.ssa import ConstantValues, to_ssa
from tests.conftest import lower_mini


def constants_for(source, qname="C.m/0"):
    program = lower_mini(source)
    method = program.lookup_method(qname)
    info = to_ssa(method)
    return method, ConstantValues(method, info)


def const_of_local(method, cv, name):
    """The constant of the highest SSA version of a local."""
    best = None
    for var in cv.values:
        if var == name or var.startswith(name + "."):
            best = var if best is None or var > best else best
    # prefer version .1 for straight-line code
    for var in sorted(cv.values):
        if var.split(".")[0] == name:
            best = var
    return cv.constant_of(best) if best else None


def test_string_literal():
    method, cv = constants_for("""
class C { static void m() { String s = "key"; } }""")
    assert const_of_local(method, cv, "s") == "key"


def test_string_concat_folds():
    method, cv = constants_for("""
class C { static void m() { String s = "a" + "b" + "c"; } }""")
    assert const_of_local(method, cv, "s") == "abc"


def test_int_arithmetic_folds():
    method, cv = constants_for("""
class C { static void m() { int x = 2 * 3 + 4; } }""")
    assert const_of_local(method, cv, "x") == 10


def test_copy_propagation():
    method, cv = constants_for("""
class C { static void m() { String a = "k"; String b = a; } }""")
    assert const_of_local(method, cv, "b") == "k"


def test_parameter_is_not_constant():
    method, cv = constants_for("""
class C { static void m(String p) { String s = p; } }""", "C.m/1")
    assert const_of_local(method, cv, "s") is None


def test_phi_of_same_constant_is_constant():
    method, cv = constants_for("""
class C {
  static void m(int p) {
    String s = "x";
    if (p > 0) { s = "x"; }
    String t = s;
  }
}""", "C.m/1")
    assert const_of_local(method, cv, "t") == "x"


def test_phi_of_different_constants_is_bottom():
    method, cv = constants_for("""
class C {
  static void m(int p) {
    String s = "a";
    if (p > 0) { s = "b"; }
    String t = s;
  }
}""", "C.m/1")
    assert const_of_local(method, cv, "t") is None


def test_comparison_folds():
    method, cv = constants_for("""
class C { static void m() { boolean b = 1 < 2; } }""")
    assert const_of_local(method, cv, "b") is True


def test_division_by_zero_is_bottom():
    method, cv = constants_for("""
class C { static void m() { int x = 1 / 0; } }""")
    assert const_of_local(method, cv, "x") is None


def test_cast_preserves_constant():
    method, cv = constants_for("""
class C { static void m() { Object o = (Object) "k"; } }""")
    assert const_of_local(method, cv, "o") == "k"


def test_negation_folds():
    method, cv = constants_for("""
class C { static void m() { int x = -5; boolean b = !true; } }""")
    assert const_of_local(method, cv, "x") == -5
    assert const_of_local(method, cv, "b") is False


def test_string_constant_of_rejects_non_strings():
    method, cv = constants_for("""
class C { static void m() { int x = 3; } }""")
    for var in cv.values:
        if var.split(".")[0] == "x":
            assert cv.string_constant_of(var) is None


def test_call_result_is_not_constant():
    method, cv = constants_for("""
class C {
  static String id() { return "k"; }
  static void m() { String s = C.id(); }
}""")
    assert const_of_local(method, cv, "s") is None


def test_loop_carried_variable_not_constant():
    method, cv = constants_for("""
class C {
  static void m(int p) {
    int x = 0;
    while (x < p) { x = x + 1; }
    int y = x;
  }
}""", "C.m/1")
    assert const_of_local(method, cv, "y") is None

"""Dominator-tree and dominance-frontier tests."""

from repro.ssa import DominatorTree, reverse_postorder, rpo_numbering
from tests.conftest import lower_mini

DIAMOND = """
class C {
  int m(int p) {
    int x = 0;
    if (p > 0) { x = 1; } else { x = 2; }
    return x;
  }
}"""

LOOP = """
class C {
  int m(int p) {
    int x = 0;
    while (x < p) { x = x + 1; }
    return x;
  }
}"""


def method_of(source, qname="C.m/1"):
    return lower_mini(source).lookup_method(qname)


def test_rpo_starts_at_entry():
    method = method_of(DIAMOND)
    order = reverse_postorder(method)
    assert order[0] == method.entry_block
    assert set(order) == set(method.blocks)


def test_rpo_numbering_consistent():
    method = method_of(DIAMOND)
    numbering = rpo_numbering(method)
    order = reverse_postorder(method)
    for idx, bid in enumerate(order):
        assert numbering[bid] == idx


def test_entry_dominates_everything():
    method = method_of(DIAMOND)
    dom = DominatorTree(method)
    for bid in method.blocks:
        assert dom.dominates(method.entry_block, bid)


def test_diamond_join_dominated_by_entry_not_branches():
    method = method_of(DIAMOND)
    dom = DominatorTree(method)
    # Find the join block: two predecessors.
    joins = [bid for bid, b in method.blocks.items() if len(b.preds) == 2]
    assert joins
    join = joins[0]
    then_b, else_b = method.blocks[method.entry_block].succs
    assert not dom.dominates(then_b, join)
    assert not dom.dominates(else_b, join)
    assert dom.idom[join] == method.entry_block


def test_diamond_frontier_is_join():
    method = method_of(DIAMOND)
    dom = DominatorTree(method)
    joins = [bid for bid, b in method.blocks.items() if len(b.preds) == 2]
    then_b, else_b = method.blocks[method.entry_block].succs
    assert dom.frontier[then_b] == {joins[0]}
    assert dom.frontier[else_b] == {joins[0]}


def test_loop_header_in_own_body_frontier():
    method = method_of(LOOP)
    dom = DominatorTree(method)
    headers = [bid for bid, b in method.blocks.items()
               if len(b.preds) == 2]
    assert headers
    header = headers[0]
    body = [s for s in method.blocks[header].succs
            if header in dom.frontier.get(s, set())]
    assert body  # the loop body's frontier contains the header


def test_dominates_is_reflexive():
    method = method_of(LOOP)
    dom = DominatorTree(method)
    for bid in method.blocks:
        assert dom.dominates(bid, bid)


def test_dom_tree_preorder_covers_all_blocks():
    method = method_of(LOOP)
    dom = DominatorTree(method)
    order = dom.dom_tree_preorder()
    assert set(order) == set(method.blocks)
    assert order[0] == method.entry_block


def test_children_partition():
    method = method_of(DIAMOND)
    dom = DominatorTree(method)
    seen = set()
    for kids in dom.children.values():
        for kid in kids:
            assert kid not in seen
            seen.add(kid)
    assert seen == set(method.blocks) - {method.entry_block}

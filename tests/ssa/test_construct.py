"""SSA construction tests."""

from repro.ir import Phi
from repro.ssa import to_ssa
from tests.conftest import lower_mini


def ssa_method(source, qname="C.m/1"):
    program = lower_mini(source)
    method = program.lookup_method(qname)
    info = to_ssa(method)
    return method, info


def all_defs(method):
    out = []
    for instr in method.instructions():
        out.extend(instr.defs())
    return out


def test_single_assignment_property():
    method, _ = ssa_method("""
class C {
  int m(int p) {
    int x = 1;
    x = x + 1;
    if (p > 0) { x = 5; }
    return x;
  }
}""")
    defs = all_defs(method)
    assert len(defs) == len(set(defs)), "each SSA var defined once"


def test_uses_refer_to_existing_defs_or_entry():
    method, _ = ssa_method("""
class C {
  int m(int p) {
    int x = p;
    while (x < 10) { x = x + 1; }
    return x;
  }
}""")
    defs = set(all_defs(method)) | {"p", "this"}
    for instr in method.instructions():
        for use in instr.uses():
            assert use in defs or use.endswith(".0"), use


def test_phi_placed_at_join():
    method, _ = ssa_method("""
class C {
  int m(int p) {
    int x = 0;
    if (p > 0) { x = 1; } else { x = 2; }
    return x;
  }
}""")
    phis = [i for i in method.instructions() if isinstance(i, Phi)]
    x_phis = [p for p in phis if p.lhs.startswith("x.")]
    assert len(x_phis) == 1
    assert len(x_phis[0].operands) == 2


def test_phi_operands_keyed_by_predecessor():
    method, _ = ssa_method("""
class C {
  int m(int p) {
    int x = 0;
    if (p > 0) { x = 1; } else { x = 2; }
    return x;
  }
}""")
    phi = next(i for i in method.instructions()
               if isinstance(i, Phi) and i.lhs.startswith("x."))
    for pred in phi.operands:
        assert pred in method.blocks
    # The two operands are distinct versions of x.
    assert len(set(phi.operands.values())) == 2


def test_loop_variable_gets_phi():
    method, _ = ssa_method("""
class C {
  int m(int p) {
    int i = 0;
    while (i < p) { i = i + 1; }
    return i;
  }
}""")
    phis = [i for i in method.instructions()
            if isinstance(i, Phi) and i.lhs.startswith("i.")]
    assert len(phis) == 1


def test_params_keep_their_names():
    method, info = ssa_method("""
class C {
  int m(int p) { return p; }
}""")
    uses = {u for instr in method.instructions() for u in instr.uses()}
    assert "p" in uses


def test_dead_phis_pruned():
    method, _ = ssa_method("""
class C {
  int m(int p) {
    int unused = 0;
    if (p > 0) { unused = 1; } else { unused = 2; }
    return p;
  }
}""")
    phis = [i for i in method.instructions() if isinstance(i, Phi)]
    assert not any(p.lhs.startswith("unused.") for p in phis)


def test_def_use_info_is_consistent():
    method, info = ssa_method("""
class C {
  int m(int p) {
    int x = p + 1;
    int y = x + 2;
    return y;
  }
}""")
    for var, users in info.uses.items():
        for user in users:
            assert var in user.uses()
    for var, site in info.def_site.items():
        assert var in site.defs()


def test_native_method_untouched():
    program = lower_mini("class C { native void m(); }")
    method = program.lookup_method("C.m/0")
    info = to_ssa(method)
    assert not info.def_site


def test_straightline_code_needs_no_phi():
    method, _ = ssa_method("""
class C {
  int m(int p) {
    int a = p;
    int b = a + 1;
    return b;
  }
}""")
    assert not any(isinstance(i, Phi) for i in method.instructions())


def test_nested_loops():
    method, _ = ssa_method("""
class C {
  int m(int p) {
    int total = 0;
    for (int i = 0; i < p; i++) {
      for (int j = 0; j < i; j++) {
        total = total + j;
      }
    }
    return total;
  }
}""")
    defs = all_defs(method)
    assert len(defs) == len(set(defs))
    phis = [i for i in method.instructions()
            if isinstance(i, Phi) and i.lhs.startswith("total.")]
    assert len(phis) >= 2  # one per loop header

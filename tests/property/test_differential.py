"""Differential testing: dynamic execution vs the static strategies,
and the optimised solver kernel vs the preserved seed solver.

For randomly composed servlets we check the soundness lattice

    dynamically-confirmed  ⊆  hybrid findings  ⊆  CI findings

— the strongest cross-validation in the repository: any violation means
either the interpreter realizes a flow the static analysis misses
(static unsoundness) or CI misses something hybrid finds (broken
baseline ordering).

The solver property test checks the kernel overhaul end to end: for
every composed program, :class:`repro.pointer.PointerAnalysis` (online
cycle elimination, interned keys, coalescing worklist) must compute the
identical least fixpoint as :class:`repro.pointer.SeedPointerAnalysis`.
Both run with an unbounded budget — the fixpoint is order-independent,
but budget truncation is not.
"""

from hypothesis import given, settings, strategies as st

from repro import TAJ, TAJConfig
from repro.interp import run_dynamic
from repro.modeling import default_natives, prepare
from repro.pointer import (ChaoticOrder, ContextPolicy, PointerAnalysis,
                           SeedPointerAnalysis)

SNIPPETS = {
    "direct": '    resp.getWriter().println(req.getParameter("p{i}"));',
    "sanitized": ('    resp.getWriter().println('
                  'URLEncoder.encode(req.getParameter("p{i}")));'),
    "concat": ('    String v{i} = "a" + req.getParameter("p{i}");\n'
               '    resp.getWriter().println(v{i});'),
    "heap": ('    Box{i} b{i} = new Box{i}();\n'
             '    b{i}.v = req.getParameter("p{i}");\n'
             '    resp.getWriter().println(b{i}.v);'),
    "carrier": ('    Box{i} b{i} = new Box{i}();\n'
                '    b{i}.v = req.getParameter("p{i}");\n'
                '    resp.getWriter().println(b{i});'),
    "helper": ('    resp.getWriter().println('
               'Util{i}.pass(req.getParameter("p{i}")));'),
    "constant": '    resp.getWriter().println("static{i}");',
    "map": ('    HashMap m{i} = new HashMap();\n'
            '    m{i}.put("k", req.getParameter("p{i}"));\n'
            '    resp.getWriter().println(m{i}.get("k"));'),
}
NEEDS_BOX = {"heap", "carrier"}
NEEDS_UTIL = {"helper"}


def build_source(choices):
    aux = []
    methods = []
    calls = []
    for i, kind in enumerate(choices):
        if kind in NEEDS_BOX:
            aux.append(f"class Box{i} {{ String v; }}")
        if kind in NEEDS_UTIL:
            aux.append(f"class Util{i} {{ static String pass(String v) "
                       f"{{ return v; }} }}")
        methods.append(f"""
  void flow{i}(HttpServletRequest req, HttpServletResponse resp) {{
{SNIPPETS[kind].format(i=i)}
  }}""")
        calls.append(f"    this.flow{i}(req, resp);")
    return "\n".join(aux) + f"""
class D extends HttpServlet {{
  void doGet(HttpServletRequest req, HttpServletResponse resp) {{
{chr(10).join(calls)}
  }}
{''.join(methods)}
}}"""


choice_lists = st.lists(st.sampled_from(sorted(SNIPPETS)), min_size=1,
                        max_size=4)


def sink_methods(result):
    return {i.sink.split("@")[0] for i in result.report.issues}


@given(choice_lists)
@settings(max_examples=15, deadline=None)
def test_soundness_lattice(choices):
    source = build_source(choices)
    summary = run_dynamic([source])
    dynamic = {w.sink_method for w in summary.witnesses
               if summary.confirms("XSS", w.sink_method)}
    hybrid = sink_methods(
        TAJ(TAJConfig.hybrid_unbounded()).analyze_sources([source]))
    ci = sink_methods(TAJ(TAJConfig.ci()).analyze_sources([source]))
    assert dynamic <= hybrid, (choices, dynamic - hybrid)
    assert hybrid <= ci, (choices, hybrid - ci)


@given(choice_lists)
@settings(max_examples=10, deadline=None)
def test_hybrid_is_exact_on_these_patterns(choices):
    """On this pattern pool the hybrid analysis is both sound and
    complete: its finding set equals the dynamically-confirmed set."""
    source = build_source(choices)
    summary = run_dynamic([source])
    dynamic = {w.sink_method for w in summary.witnesses
               if summary.confirms("XSS", w.sink_method)}
    hybrid = sink_methods(
        TAJ(TAJConfig.hybrid_unbounded()).analyze_sources([source]))
    assert dynamic == hybrid, (choices, dynamic, hybrid)


# -- solver kernel: optimised vs seed ----------------------------------------

def canonical_solution(analysis):
    """Key-family-independent form of a points-to solution.

    The optimised solver uses interned keys, the seed its original
    dataclasses, so solutions are compared through their canonical
    string forms (the ``__str__`` formats match by construction).
    """
    out = {}
    for key, pts in analysis.iter_pts():
        if pts:
            out[str(key)] = frozenset(str(ik) for ik in pts)
    return out


def solve_with(cls, prepared):
    analysis = cls(prepared.program, ContextPolicy(),
                   natives=default_natives(), order=ChaoticOrder())
    analysis.solve()
    return analysis


@given(choice_lists)
@settings(max_examples=15, deadline=None)
def test_optimized_solver_matches_seed_fixpoint(choices):
    """Cycle elimination, interning and coalescing must not change the
    least fixpoint: every pointer key points to the same instance keys
    under both kernels, in both directions."""
    prepared = prepare([build_source(choices)])
    seed = solve_with(SeedPointerAnalysis, prepared)
    optimized = solve_with(PointerAnalysis, prepared)
    seed_solution = canonical_solution(seed)
    opt_solution = canonical_solution(optimized)
    assert seed_solution == opt_solution, (
        choices,
        {k: v for k, v in seed_solution.items()
         if opt_solution.get(k) != v},
        {k: v for k, v in opt_solution.items()
         if seed_solution.get(k) != v},
    )
    # The call graphs must agree too: same nodes reached, same edges.
    assert (seed.call_graph.node_count() ==
            optimized.call_graph.node_count()), choices
    assert (seed.call_graph.edge_count() ==
            optimized.call_graph.edge_count()), choices

"""Differential testing: dynamic execution vs the static strategies.

For randomly composed servlets we check the soundness lattice

    dynamically-confirmed  ⊆  hybrid findings  ⊆  CI findings

— the strongest cross-validation in the repository: any violation means
either the interpreter realizes a flow the static analysis misses
(static unsoundness) or CI misses something hybrid finds (broken
baseline ordering).
"""

from hypothesis import given, settings, strategies as st

from repro import TAJ, TAJConfig
from repro.interp import run_dynamic

SNIPPETS = {
    "direct": '    resp.getWriter().println(req.getParameter("p{i}"));',
    "sanitized": ('    resp.getWriter().println('
                  'URLEncoder.encode(req.getParameter("p{i}")));'),
    "concat": ('    String v{i} = "a" + req.getParameter("p{i}");\n'
               '    resp.getWriter().println(v{i});'),
    "heap": ('    Box{i} b{i} = new Box{i}();\n'
             '    b{i}.v = req.getParameter("p{i}");\n'
             '    resp.getWriter().println(b{i}.v);'),
    "carrier": ('    Box{i} b{i} = new Box{i}();\n'
                '    b{i}.v = req.getParameter("p{i}");\n'
                '    resp.getWriter().println(b{i});'),
    "helper": ('    resp.getWriter().println('
               'Util{i}.pass(req.getParameter("p{i}")));'),
    "constant": '    resp.getWriter().println("static{i}");',
    "map": ('    HashMap m{i} = new HashMap();\n'
            '    m{i}.put("k", req.getParameter("p{i}"));\n'
            '    resp.getWriter().println(m{i}.get("k"));'),
}
NEEDS_BOX = {"heap", "carrier"}
NEEDS_UTIL = {"helper"}


def build_source(choices):
    aux = []
    methods = []
    calls = []
    for i, kind in enumerate(choices):
        if kind in NEEDS_BOX:
            aux.append(f"class Box{i} {{ String v; }}")
        if kind in NEEDS_UTIL:
            aux.append(f"class Util{i} {{ static String pass(String v) "
                       f"{{ return v; }} }}")
        methods.append(f"""
  void flow{i}(HttpServletRequest req, HttpServletResponse resp) {{
{SNIPPETS[kind].format(i=i)}
  }}""")
        calls.append(f"    this.flow{i}(req, resp);")
    return "\n".join(aux) + f"""
class D extends HttpServlet {{
  void doGet(HttpServletRequest req, HttpServletResponse resp) {{
{chr(10).join(calls)}
  }}
{''.join(methods)}
}}"""


choice_lists = st.lists(st.sampled_from(sorted(SNIPPETS)), min_size=1,
                        max_size=4)


def sink_methods(result):
    return {i.sink.split("@")[0] for i in result.report.issues}


@given(choice_lists)
@settings(max_examples=15, deadline=None)
def test_soundness_lattice(choices):
    source = build_source(choices)
    summary = run_dynamic([source])
    dynamic = {w.sink_method for w in summary.witnesses
               if summary.confirms("XSS", w.sink_method)}
    hybrid = sink_methods(
        TAJ(TAJConfig.hybrid_unbounded()).analyze_sources([source]))
    ci = sink_methods(TAJ(TAJConfig.ci()).analyze_sources([source]))
    assert dynamic <= hybrid, (choices, dynamic - hybrid)
    assert hybrid <= ci, (choices, hybrid - ci)


@given(choice_lists)
@settings(max_examples=10, deadline=None)
def test_hybrid_is_exact_on_these_patterns(choices):
    """On this pattern pool the hybrid analysis is both sound and
    complete: its finding set equals the dynamically-confirmed set."""
    source = build_source(choices)
    summary = run_dynamic([source])
    dynamic = {w.sink_method for w in summary.witnesses
               if summary.confirms("XSS", w.sink_method)}
    hybrid = sink_methods(
        TAJ(TAJConfig.hybrid_unbounded()).analyze_sources([source]))
    assert dynamic == hybrid, (choices, dynamic, hybrid)

"""Corpus differential: the bitset kernel and the parallel sweep against
their reference implementations, over the micro + securibench corpora.

Three contracts, each on every corpus program:

* **points-to** — the bitset-int kernel
  (:class:`repro.pointer.PointerAnalysis`) computes bit-for-bit the same
  points-to relation as the preserved seed solver
  (:class:`repro.pointer.SeedPointerAnalysis`);
* **per-rule flows** — the full taint pipeline (SDG, direct edges, heap
  graph, hybrid slicing) run over either solver finds the identical
  per-rule flow sets, so the representation change never reaches a
  report;
* **jobs and shard invariance** — the persistent-pool sweep
  (``jobs=4``) returns exactly the serial sweep's flows in the same
  canonical order, at the default shard plan and at a deliberately
  skewed chunk size (one seed chunk per rule).

The hypothesis-driven random-program differential lives in
``test_differential.py``; this file pins the fixed corpora the
benchmarks (and the paper's evaluation) run on.
"""

import pytest

from repro.bounds import Budget
from repro.bench.micro import MICRO_CASES, MOTIVATING
from repro.bench.securibench import CASES
from repro.modeling import default_natives, prepare
from repro.pointer import (ChaoticOrder, ContextPolicy, PointerAnalysis,
                           SeedPointerAnalysis)
from repro.pointer.heapgraph import HeapGraph
from repro.sdg.hsdg import DirectEdges
from repro.sdg.noheap import NoHeapSDG
from repro.taint import TaintEngine, default_rules


def corpus():
    programs = [("micro:motivating", MOTIVATING)]
    programs += [(f"micro:{name}", src)
                 for name, (src, _) in MICRO_CASES.items()]
    for cat, cases in CASES.items():
        programs += [(f"securibench:{cat}:{name}", src)
                     for name, (src, _) in cases.items()]
    return programs


CORPUS = corpus()
CORPUS_IDS = [name for name, _ in CORPUS]


def solve_with(cls, prepared):
    analysis = cls(prepared.program, ContextPolicy(),
                   natives=default_natives(), order=ChaoticOrder())
    analysis.solve()
    return analysis


def canonical_solution(analysis):
    return {str(key): frozenset(str(ik) for ik in pts)
            for key, pts in analysis.iter_pts() if pts}


def flows_by_rule(analysis, prepared, jobs=1):
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    engine = TaintEngine(sdg, DirectEdges(sdg, analysis),
                         HeapGraph(analysis), default_rules(), Budget(),
                         jobs=jobs)
    result = engine.run()
    out = {}
    for flow in result.flows:
        out.setdefault(flow.rule, set()).add(
            (str(flow.source), str(flow.sink), flow.sink_display,
             str(flow.lcp), flow.length, flow.via_carrier))
    return out


@pytest.mark.parametrize("name,source", CORPUS, ids=CORPUS_IDS)
def test_bitset_kernel_and_flows_match_seed(name, source):
    prepared = prepare([source])
    seed = solve_with(SeedPointerAnalysis, prepared)
    optimized = solve_with(PointerAnalysis, prepared)
    assert canonical_solution(optimized) == canonical_solution(seed), name
    assert flows_by_rule(optimized, prepared) == \
        flows_by_rule(seed, prepared), name


@pytest.mark.parametrize("name,source", CORPUS, ids=CORPUS_IDS)
def test_parallel_sweep_is_jobs_invariant(name, source):
    prepared = prepare([source])
    analysis = solve_with(PointerAnalysis, prepared)
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    direct = DirectEdges(sdg, analysis)
    heap = HeapGraph(analysis)
    serial = TaintEngine(sdg, direct, heap, default_rules(),
                         Budget()).run()
    for shards_per_rule in (None, 1):
        parallel = TaintEngine(sdg, direct, heap, default_rules(),
                               Budget(), jobs=4,
                               shards_per_rule=shards_per_rule).run()
        assert [f.sort_key() for f in parallel.flows] == \
            [f.sort_key() for f in serial.flows], (name, shards_per_rule)
        assert parallel.completed_rules == serial.completed_rules, name

"""Property-based tests: SSA invariants over generated control flow.

A small program generator produces arbitrary nestings of if/while with
assignments over a fixed pool of variables; SSA construction must always
yield single-assignment form with dominating definitions.
"""

from hypothesis import given, settings, strategies as st

from repro.ir import Phi, validate_program
from repro.lang import lower_source
from repro.ssa import DominatorTree, to_ssa

VARS = ["a", "b", "c"]


@st.composite
def statements(draw, depth=0):
    n = draw(st.integers(min_value=1, max_value=3))
    out = []
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["assign", "assign", "if", "while"] if depth < 2
            else ["assign"]))
        if kind == "assign":
            lhs = draw(st.sampled_from(VARS))
            rhs = draw(st.sampled_from(VARS + ["1", "2"]))
            out.append(f"{lhs} = {rhs};")
        elif kind == "if":
            cond = draw(st.sampled_from(VARS))
            then = draw(statements(depth + 1))
            els = draw(statements(depth + 1))
            out.append(
                f"if ({cond} > 0) {{ {' '.join(then)} }} "
                f"else {{ {' '.join(els)} }}")
        else:
            cond = draw(st.sampled_from(VARS))
            body = draw(statements(depth + 1))
            out.append(f"while ({cond} > 0) {{ {' '.join(body)} }}")
    return out


def build(stmts):
    body = " ".join(stmts)
    source = f"""
library class Object {{ }}
class C {{
  static int m(int a, int b, int c) {{
    {body}
    return a;
  }}
}}"""
    program = lower_source(source)
    method = program.lookup_method("C.m/3")
    info = to_ssa(method)
    validate_program(program)
    return program, method, info


@given(statements())
@settings(max_examples=60, deadline=None)
def test_single_assignment(stmts):
    _, method, _ = build(stmts)
    defs = []
    for instr in method.instructions():
        defs.extend(instr.defs())
    assert len(defs) == len(set(defs))


@given(statements())
@settings(max_examples=60, deadline=None)
def test_every_use_has_a_def_or_is_entry(stmts):
    _, method, _ = build(stmts)
    defined = {"a", "b", "c"}
    for instr in method.instructions():
        defined.update(instr.defs())
    for instr in method.instructions():
        for use in instr.uses():
            assert use in defined or use.endswith(".0"), use


@given(statements())
@settings(max_examples=40, deadline=None)
def test_non_phi_defs_dominate_uses(stmts):
    _, method, _ = build(stmts)
    dom = DominatorTree(method)
    def_block = {}
    for bid, block in method.blocks.items():
        for instr in block.instrs:
            for var in instr.defs():
                def_block[var] = bid
    for bid, block in method.blocks.items():
        for instr in block.instrs:
            if isinstance(instr, Phi):
                # Phi operands must be defined in (a dominator of) the
                # corresponding predecessor.
                for pred, var in instr.operands.items():
                    if var in def_block:
                        assert dom.dominates(def_block[var], pred)
            else:
                for use in instr.uses():
                    if use in def_block:
                        assert dom.dominates(def_block[use], bid)


@given(statements())
@settings(max_examples=40, deadline=None)
def test_phi_operand_count_matches_preds(stmts):
    _, method, _ = build(stmts)
    for bid, block in method.blocks.items():
        for instr in block.instrs:
            if isinstance(instr, Phi):
                assert set(instr.operands) == set(block.preds)

"""Corpus differential for the summary engine: on every micro +
securibench program, ``--strategy summary`` must find byte-identical
flows to the hybrid reference — cold (populating the cache), warm
in-memory (same backend, second run), and warm from disk (a fresh
backend over the populated directory, the cross-process shape).

One cache directory is shared across the whole corpus, so the sweep
also exercises cross-program key isolation: a hit may only come from
an identical (method IR, callee environment, rule) — never from a
similarly named method of another program.

The jobs/shard invariance analogue for the slicing strategies lives in
``test_parallel_differential.py``; this file pins the third engine.
"""

import pytest

from repro.bounds import Budget
from repro.bench.micro import MICRO_CASES, MOTIVATING
from repro.bench.securibench import CASES
from repro.modeling import default_natives, prepare
from repro.pointer import ChaoticOrder, ContextPolicy, PointerAnalysis
from repro.pointer.heapgraph import HeapGraph
from repro.sdg.hsdg import DirectEdges
from repro.sdg.noheap import NoHeapSDG
from repro.summaries import SummaryBackend
from repro.taint import TaintEngine, default_rules


def corpus():
    programs = [("micro:motivating", MOTIVATING)]
    programs += [(f"micro:{name}", src)
                 for name, (src, _) in MICRO_CASES.items()]
    for cat, cases in CASES.items():
        programs += [(f"securibench:{cat}:{name}", src)
                     for name, (src, _) in cases.items()]
    return programs


CORPUS = corpus()
CORPUS_IDS = [name for name, _ in CORPUS]


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("summary-cache"))


def build_pieces(source):
    prepared = prepare([source])
    analysis = PointerAnalysis(prepared.program, ContextPolicy(),
                               natives=default_natives(),
                               order=ChaoticOrder())
    analysis.solve()
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    return sdg, DirectEdges(sdg, analysis), HeapGraph(analysis)


def run(pieces, strategy, backend=None):
    sdg, direct, heap = pieces
    if backend is not None:
        backend.prepare(sdg)
    engine = TaintEngine(sdg, direct, heap, default_rules(), Budget(),
                         strategy=strategy, summary_backend=backend)
    return engine.run()


@pytest.mark.parametrize("name,source", CORPUS, ids=CORPUS_IDS)
def test_summary_flows_match_hybrid(name, source, cache_dir):
    pieces = build_pieces(source)
    ref = run(pieces, "hybrid")
    ref_keys = [f.sort_key() for f in ref.flows]

    backend = SummaryBackend(cache_dir)
    cold = run(pieces, "summary", backend)
    assert [f.sort_key() for f in cold.flows] == ref_keys, name
    assert cold.completed_rules == ref.completed_rules, name

    warm = run(pieces, "summary", backend)
    assert [f.sort_key() for f in warm.flows] == ref_keys, name

    fresh = SummaryBackend(cache_dir)
    warm2 = run(pieces, "summary", fresh)
    assert [f.sort_key() for f in warm2.flows] == ref_keys, name
    assert warm2.completed_rules == ref.completed_rules, name

"""Scaled corpus stays dynamically realizable.

The differential harness validates unscaled specs; this sweep proves
the property the scaling benchmarks lean on — ``scaled(10)`` grows an
app wide (×10 entrypoints) without breaking any planted true positive.
Every TP in every suite spec must remain confirmable by the dynamic
interpreter, and no sanitized plant may ever produce a tainted sink
event.
"""

import pytest

from repro.bench.generator import generate_app
from repro.bench.suite import suite_specs
from repro.interp import run_dynamic

SCALE = 10


@pytest.mark.parametrize("name", sorted(suite_specs()))
def test_scaled_planted_tps_stay_realizable(name):
    spec = suite_specs()[name].scaled(SCALE)
    app = generate_app(spec)
    summary = run_dynamic(app.sources, app.deployment_descriptor)

    tps = [p for p in app.planted if p.is_true_positive]
    assert len(tps) >= SCALE, "scaling multiplies the planted patterns"
    missed = [(p.kind, p.rule, p.sink_method) for p in tps
              if not summary.confirms(p.rule, p.sink_method)]
    assert not missed, f"unrealizable after scaling: {missed[:5]}"

    sanitized = [p for p in app.planted
                 if not p.is_true_positive and not p.is_decoy]
    for plant in sanitized:
        assert not summary.confirms(plant.rule, plant.sink_method), \
            f"sanitized plant dynamically confirmed: {plant.sink_method}"

"""Property-based tests for the lexer."""

import string

from hypothesis import given, settings, strategies as st

from repro.lang import LexError, tokenize
from repro.lang.lexer import KEYWORDS

identifiers = st.from_regex(r"[A-Za-z_$][A-Za-z0-9_$]{0,10}",
                            fullmatch=True).filter(
                                lambda s: s not in KEYWORDS)
numbers = st.integers(min_value=0, max_value=10 ** 9).map(str)
string_bodies = st.text(
    alphabet=st.characters(
        codec="ascii", exclude_characters='"\\\n\r'),
    max_size=20)


@given(identifiers)
def test_identifier_round_trips(name):
    toks = tokenize(name)
    assert toks[0].kind == "id"
    assert toks[0].text == name
    assert toks[1].kind == "eof"


@given(numbers)
def test_number_round_trips(text):
    toks = tokenize(text)
    assert toks[0].kind == "int"
    assert toks[0].text == text


@given(string_bodies)
def test_string_literal_round_trips(body):
    toks = tokenize(f'"{body}"')
    assert toks[0].kind == "string"
    assert toks[0].text == body


@given(st.lists(identifiers, min_size=1, max_size=8))
def test_whitespace_variations_do_not_change_tokens(names):
    tight = " ".join(names)
    loose = "\n\t ".join(names)
    assert [t.text for t in tokenize(tight)] == \
        [t.text for t in tokenize(loose)]


@given(st.text(alphabet=string.printable, max_size=40))
@settings(max_examples=200)
def test_lexer_terminates_on_arbitrary_input(text):
    """The lexer either tokenizes or raises LexError — never hangs or
    crashes with an unexpected exception.  (Regression: identifiers at
    EOF used to loop forever.)"""
    try:
        toks = tokenize(text)
        assert toks[-1].kind == "eof"
    except LexError:
        pass


@given(st.lists(st.sampled_from(sorted(KEYWORDS)), min_size=1,
                max_size=6))
def test_keywords_always_lex_as_keywords(words):
    toks = tokenize(" ".join(words))
    assert all(t.kind == "kw" for t in toks[:-1])


@given(identifiers, identifiers)
def test_comments_are_invisible(a, b):
    toks = tokenize(f"{a} /* {b} */ // {b}\n")
    assert [t.text for t in toks[:-1]] == [a]

"""Property-based tests over analysis invariants.

A tiny servlet generator produces random mixes of tainted/sanitized/
benign flows; the generated ground truth lets us assert soundness and
relative-precision invariants for the three slicing strategies.
"""

from hypothesis import given, settings, strategies as st

from repro import TAJ, TAJConfig

PATTERNS = {
    # pattern id -> (body template, is real flow)
    "direct": ('resp.getWriter().println(req.getParameter("p{i}"));',
               True),
    "string": ('String v{i} = req.getParameter("p{i}").trim();\n'
               '    resp.getWriter().println(v{i});', True),
    "sanitized": ('resp.getWriter().println('
                  'URLEncoder.encode(req.getParameter("p{i}")));', False),
    "constant": ('resp.getWriter().println("banner{i}");', False),
    "map_hit": ('HashMap m{i} = new HashMap();\n'
                '    m{i}.put("k", req.getParameter("p{i}"));\n'
                '    resp.getWriter().println(m{i}.get("k"));', True),
    "map_miss": ('HashMap m{i} = new HashMap();\n'
                 '    m{i}.put("k", req.getParameter("p{i}"));\n'
                 '    resp.getWriter().println(m{i}.get("other"));',
                 False),
}


def build_source(choices):
    methods = []
    calls = []
    for i, pattern in enumerate(choices):
        body, _ = PATTERNS[pattern]
        methods.append(f"""
  void flow{i}(HttpServletRequest req, HttpServletResponse resp) {{
    {body.format(i=i)}
  }}""")
        calls.append(f"    this.flow{i}(req, resp);")
    return f"""
class P extends HttpServlet {{
  void doGet(HttpServletRequest req, HttpServletResponse resp) {{
{chr(10).join(calls)}
  }}
{''.join(methods)}
}}"""


def expected_count(choices):
    return sum(1 for c in choices if PATTERNS[c][1])


choice_lists = st.lists(st.sampled_from(sorted(PATTERNS)), min_size=1,
                        max_size=5)


@given(choice_lists)
@settings(max_examples=25, deadline=None)
def test_hybrid_matches_ground_truth_exactly(choices):
    source = build_source(choices)
    result = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources([source])
    xss = [i for i in result.report.issues if i.rule == "XSS"]
    assert len(xss) == expected_count(choices)


@given(choice_lists)
@settings(max_examples=15, deadline=None)
def test_ci_is_sound_superset_of_hybrid(choices):
    source = build_source(choices)
    hybrid = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources([source])
    ci = TAJ(TAJConfig.ci()).analyze_sources([source])
    hybrid_sinks = {i.sink for i in hybrid.report.issues}
    ci_sinks = {i.sink for i in ci.report.issues}
    assert hybrid_sinks <= ci_sinks


@given(choice_lists)
@settings(max_examples=10, deadline=None)
def test_report_issue_count_never_exceeds_raw_flows(choices):
    source = build_source(choices)
    result = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources([source])
    assert result.issues <= max(result.raw_flows, result.issues)
    assert result.report.raw_flow_count == result.raw_flows

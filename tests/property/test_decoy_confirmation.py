"""Property: every statically-reported decoy is dynamically refuted.

The decoy patterns (sanitize-in-place field overwrites) exploit the
flow-insensitive weak heap update to draw a static report, but the
replay sees the ``san=`` annotation on the witnessing label — so the
oracle must label every decoy ``refuted``/``sanitized`` while the
planted true positives in the same app stay ``confirmed``.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.bench.generator import AppSpec, generate_app
from repro.confirm import CONFIRMED, REFUTED, confirm_result
from repro.core import TAJ, TAJConfig

counts = st.integers(min_value=0, max_value=2)


def small_spec(seed, field, static, sql, direct):
    return AppSpec(
        name="prop", seed=seed, tp_direct=direct, tp_string=0,
        tp_map=0, tp_heap=0, tp_helper=0, tp_carrier=0, tp_sql=0,
        tp_leak=0, sanitized=0, decoy_field=field, decoy_static=static,
        decoy_sql=sql, trap_context=0, trap_factory=0, trap_xentry=0,
        trap_logger=0, cold_classes=0, lib_classes=0)


@given(field=counts, static=counts, sql=counts,
       direct=st.integers(min_value=0, max_value=1),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_every_reported_decoy_is_refuted(field, static, sql, direct,
                                         seed):
    assume(field + static + sql > 0)
    app = generate_app(small_spec(seed, field, static, sql, direct))
    result = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources(
        app.sources, deployment_descriptor=app.deployment_descriptor)
    conf = confirm_result(result, app.sources,
                          app.deployment_descriptor)

    decoy_methods = {p.sink_method for p in app.planted if p.is_decoy}
    reported_decoys = [v for v in conf.verdicts
                       if v.sink.split("@")[0] in decoy_methods]
    # The decoys exist to be statically reported: the weak-update
    # over-approximation guarantees the flow survives the analysis.
    assert len(reported_decoys) == field + static + sql
    for verdict in reported_decoys:
        assert verdict.verdict == REFUTED
        assert verdict.reason == "sanitized"
        assert any("san=" in label for label in verdict.labels)

    # ... and refutation never bleeds into the real flows.
    true_verdicts = [v for v in conf.verdicts
                     if v.sink.split("@")[0] not in decoy_methods]
    assert len(true_verdicts) == direct
    assert all(v.verdict == CONFIRMED for v in true_verdicts)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_decoys_are_reported_by_every_engine_config(seed):
    """The decoy family must draw a report from each engine config —
    otherwise the precision corpus would silently measure nothing."""
    app = generate_app(small_spec(seed, 1, 1, 1, 0))
    decoy_methods = {p.sink_method for p in app.planted if p.is_decoy}
    for config in (TAJConfig.ci(), TAJConfig.hybrid_optimized(),
                   TAJConfig.cs()):
        result = TAJ(config).analyze_sources(
            app.sources, deployment_descriptor=app.deployment_descriptor)
        reported = {f.sink.method for f in result.flows}
        assert decoy_methods <= reported

"""Taint-engine orchestration tests."""

import pytest

from repro.bounds import Budget
from repro.modeling import prepare, default_natives, COLLECTION_CLASSES, \
    FACTORY_METHODS
from repro.pointer import ContextPolicy, PointerAnalysis, PolicyConfig
from repro.pointer.heapgraph import HeapGraph
from repro.sdg.hsdg import DirectEdges
from repro.sdg.noheap import NoHeapSDG
from repro.taint import TaintEngine, default_rules, make_slicer
from repro.slicing import CISlicer, CSSlicer, HybridSlicer

APP = """
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("p"));
    Connection c = DriverManager.getConnection("db");
    c.createStatement().executeQuery("q" + req.getParameter("u"));
  }
}
"""


@pytest.fixture(scope="module")
def pieces():
    prepared = prepare([APP])
    config = PolicyConfig(collection_classes=set(COLLECTION_CLASSES),
                          factory_methods=set(FACTORY_METHODS))
    analysis = PointerAnalysis(prepared.program, ContextPolicy(config),
                               natives=default_natives())
    analysis.solve()
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    return sdg, DirectEdges(sdg, analysis), HeapGraph(analysis)


def test_engine_runs_all_rules(pieces):
    sdg, direct, heap = pieces
    engine = TaintEngine(sdg, direct, heap, default_rules(), Budget())
    result = engine.run()
    rules = {f.rule for f in result.flows}
    assert rules == {"XSS", "SQLI"}
    assert not result.failed
    assert result.seconds > 0


def test_make_slicer_dispatch(pieces):
    sdg, direct, heap = pieces
    assert isinstance(make_slicer("hybrid", sdg, direct, heap, Budget()),
                      HybridSlicer)
    assert isinstance(make_slicer("ci", sdg, direct, heap, Budget()),
                      CISlicer)
    assert isinstance(make_slicer("cs", sdg, direct, heap, Budget()),
                      CSSlicer)
    with pytest.raises(ValueError):
        make_slicer("nope", sdg, direct, heap, Budget())


def test_cs_budget_failure_reports_cleanly(pieces):
    sdg, direct, heap = pieces
    engine = TaintEngine(sdg, direct, heap, default_rules(),
                         Budget(max_state_units=1), strategy="cs")
    result = engine.run()
    # The plain no-heap SDG has no modref; the meter still charges per
    # fact, so the tiny budget fails the run.
    assert result.failed
    assert result.flows == []


def test_state_units_recorded(pieces):
    sdg, direct, heap = pieces
    engine = TaintEngine(sdg, direct, heap, default_rules(), Budget())
    result = engine.run()
    assert result.state_units > 0

"""Taint-engine orchestration tests."""

import pytest

from repro.bounds import Budget
from repro.modeling import prepare, default_natives, COLLECTION_CLASSES, \
    FACTORY_METHODS
from repro.pointer import ContextPolicy, PointerAnalysis, PolicyConfig
from repro.pointer.heapgraph import HeapGraph
from repro.sdg.hsdg import DirectEdges
from repro.sdg.noheap import NoHeapSDG
from repro.taint import TaintEngine, default_rules, make_slicer
from repro.taint.rules import RuleSet
from repro.slicing import CISlicer, CSSlicer, HybridSlicer

APP = """
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("p"));
    Connection c = DriverManager.getConnection("db");
    c.createStatement().executeQuery("q" + req.getParameter("u"));
  }
}
"""


@pytest.fixture(scope="module")
def pieces():
    prepared = prepare([APP])
    config = PolicyConfig(collection_classes=set(COLLECTION_CLASSES),
                          factory_methods=set(FACTORY_METHODS))
    analysis = PointerAnalysis(prepared.program, ContextPolicy(config),
                               natives=default_natives())
    analysis.solve()
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    return sdg, DirectEdges(sdg, analysis), HeapGraph(analysis)


def test_engine_runs_all_rules(pieces):
    sdg, direct, heap = pieces
    engine = TaintEngine(sdg, direct, heap, default_rules(), Budget())
    result = engine.run()
    rules = {f.rule for f in result.flows}
    assert rules == {"XSS", "SQLI"}
    assert not result.failed
    # Single timing source: the engine keeps no clock of its own — the
    # taint phase duration comes from the phase.taint tracer span.
    assert not hasattr(result, "seconds")
    assert result.completed_rules == [r.name for r in default_rules()]
    assert result.final_strategy == "hybrid"


def test_make_slicer_dispatch(pieces):
    sdg, direct, heap = pieces
    assert isinstance(make_slicer("hybrid", sdg, direct, heap, Budget()),
                      HybridSlicer)
    assert isinstance(make_slicer("ci", sdg, direct, heap, Budget()),
                      CISlicer)
    assert isinstance(make_slicer("cs", sdg, direct, heap, Budget()),
                      CSSlicer)
    with pytest.raises(ValueError):
        make_slicer("nope", sdg, direct, heap, Budget())


def test_cs_budget_failure_reports_cleanly(pieces):
    sdg, direct, heap = pieces
    engine = TaintEngine(sdg, direct, heap, default_rules(),
                         Budget(max_state_units=1), strategy="cs")
    result = engine.run()
    # The plain no-heap SDG has no modref; the meter still charges per
    # fact, so the tiny budget fails the run.
    assert result.failed
    assert result.flows == []


def test_state_units_recorded(pieces):
    sdg, direct, heap = pieces
    engine = TaintEngine(sdg, direct, heap, default_rules(), Budget())
    result = engine.run()
    assert result.state_units > 0


def _state_budget_that_fails_rule_two(sdg, direct, heap):
    """A max_state_units value that lets the first rule complete but
    exhausts while slicing the second (found empirically per-run so the
    regression test stays robust to slicer changes)."""
    rules = list(default_rules())
    baseline = TaintEngine(sdg, direct, heap, default_rules(),
                           Budget()).run()
    per_rule = {}
    for rule in rules:
        res = TaintEngine(sdg, direct, heap, RuleSet([rule]),
                          Budget()).run()
        per_rule[rule.name] = res.state_units
    first = rules[0].name
    # Enough for rule 1, not enough for rules 1+2 together.
    budget = per_rule[first] + 1
    assert budget < baseline.state_units
    return budget


def test_budget_abort_preserves_completed_rule_flows(pieces):
    """Regression: a mid-sweep BudgetExhausted used to wipe the whole
    flow list (`result.flows = []`); flows from rules that completed
    before the trip must survive."""
    sdg, direct, heap = pieces
    budget = _state_budget_that_fails_rule_two(sdg, direct, heap)
    engine = TaintEngine(sdg, direct, heap, default_rules(),
                         Budget(max_state_units=budget))
    result = engine.run()
    assert result.failed
    assert result.completed_rules, "rule 1 completed before the trip"
    kept = {f.rule for f in result.flows}
    assert set(result.completed_rules) == kept
    assert result.flows, "completed-rule flows must be preserved"


# -- parallel sweep (--jobs) -------------------------------------------------

def test_parallel_matches_serial(pieces):
    sdg, direct, heap = pieces
    serial = TaintEngine(sdg, direct, heap, default_rules(),
                         Budget()).run()
    parallel = TaintEngine(sdg, direct, heap, default_rules(), Budget(),
                           jobs=4).run()
    # Canonical flow order: the merged result is exactly the serial one.
    assert [f.sort_key() for f in parallel.flows] == \
        [f.sort_key() for f in serial.flows]
    assert parallel.completed_rules == serial.completed_rules
    assert parallel.final_strategy == serial.final_strategy
    assert parallel.failed == serial.failed
    assert parallel.truncated == serial.truncated


def test_parallel_merges_worker_observability(pieces):
    from repro.obs import Observability
    sdg, direct, heap = pieces
    obs = Observability()
    engine = TaintEngine(sdg, direct, heap, default_rules(), Budget(),
                         obs=obs, jobs=2)
    result = engine.run()
    assert result.flows
    rule_count = len(list(default_rules()))
    assert obs.metrics.gauge_value("taint.parallel_jobs") == 2
    # One worker timing per rule, replayed into the parent registry…
    assert obs.metrics.timer_summary(
        "taint.rule_seconds")["count"] == rule_count
    # …and one pre-timed taint.rule span per rule in the parent trace.
    spans = obs.tracer.find("taint.rule")
    assert len(spans) == rule_count
    assert all(s.attrs.get("parallel") for s in spans)
    assert {s.attrs["rule"] for s in spans} == \
        {r.name for r in default_rules()}


def test_parallel_hard_failure_mimics_serial(pieces):
    sdg, direct, heap = pieces
    serial = TaintEngine(sdg, direct, heap, default_rules(),
                         Budget(max_state_units=1), strategy="cs").run()
    parallel = TaintEngine(sdg, direct, heap, default_rules(),
                           Budget(max_state_units=1), strategy="cs",
                           jobs=2).run()
    assert serial.failed and parallel.failed
    assert parallel.flows == serial.flows == []
    assert parallel.failure == serial.failure


def test_jobs_one_takes_serial_path(pieces):
    from repro.obs import Observability
    sdg, direct, heap = pieces
    obs = Observability()
    engine = TaintEngine(sdg, direct, heap, default_rules(), Budget(),
                         obs=obs, jobs=1)
    result = engine.run()
    assert result.flows
    # The serial path never records the parallel gauge.
    assert obs.metrics.gauge_value("taint.parallel_jobs") is None

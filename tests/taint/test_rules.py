"""Security-rule matching tests."""

from repro.ir import Call, StringOp
from repro.taint import RuleSet, SecurityRule, default_rules


def make_call(cls, name, kind="virtual"):
    return Call("r", kind, cls, name, "recv" if kind != "static" else None,
                ["a"])


def test_default_rules_cover_four_vectors():
    rules = default_rules()
    assert {r.name for r in rules} == {"XSS", "SQLI", "MALICIOUS_FILE",
                                       "INFO_LEAK"}


def test_source_match_by_resolved_display():
    rule = default_rules().by_name("XSS")
    call = make_call("", "getParameter")
    assert rule.source_match(call, "HttpServletRequest.getParameter")


def test_source_match_syntactic():
    rule = default_rules().by_name("XSS")
    call = make_call("HttpServletRequest", "getParameter")
    assert rule.source_match(call) is not None


def test_source_match_by_bare_name_for_unresolved_virtual():
    rule = default_rules().by_name("XSS")
    call = make_call("", "getParameter")
    assert rule.source_match(call) is not None


def test_no_bare_name_match_when_class_known():
    rule = default_rules().by_name("XSS")
    call = make_call("NotARequest", "getParameter")
    # class is known and doesn't match: only resolved display can match
    assert rule.source_match(call) is None


def test_sink_match_and_params():
    rule = default_rules().by_name("SQLI")
    call = make_call("Statement", "executeQuery")
    display = rule.sink_match(call)
    assert display == "Statement.executeQuery"
    assert rule.sink_params(display) == (0,)


def test_sanitizer_match_call():
    rule = default_rules().by_name("XSS")
    call = make_call("URLEncoder", "encode", kind="static")
    assert rule.sanitizer_match_call(call) is not None


def test_sanitizer_match_stringop():
    rule = SecurityRule(name="T", sanitizers={"String.scrub"})
    op = StringOp("x", "String.scrub", ["a"])
    assert rule.sanitizer_match_strop(op) == "String.scrub"
    other = StringOp("x", "String.concat", ["a"])
    assert rule.sanitizer_match_strop(other) is None


def test_sanitizers_are_rule_specific():
    rules = default_rules()
    xss, sqli = rules.by_name("XSS"), rules.by_name("SQLI")
    call = make_call("URLEncoder", "encode", kind="static")
    assert xss.sanitizer_match_call(call) is not None
    assert sqli.sanitizer_match_call(call) is None


def test_ref_source_match():
    rule = default_rules().by_name("XSS")
    call = make_call("RandomAccessFile", "readFully")
    display = rule.ref_source_match(call)
    assert display == "RandomAccessFile.readFully"
    assert rule.ref_sources[display] == (0,)


def test_ruleset_indexes():
    rules = default_rules()
    assert "HttpServletRequest.getParameter" in rules.all_source_methods()
    assert "PrintWriter.println" in rules.all_sink_methods()
    assert "URLEncoder.encode" in rules.all_sanitizer_methods()
    apis = rules.taint_api_methods()
    assert apis >= rules.all_source_methods()
    assert apis >= rules.all_sink_methods()


def test_ruleset_by_name_raises_on_unknown():
    import pytest
    with pytest.raises(KeyError):
        default_rules().by_name("NOPE")


def test_remediations_distinct_per_rule():
    rules = default_rules()
    remediations = {r.remediation for r in rules}
    assert len(remediations) == len(rules)


def test_custom_ruleset():
    rule = SecurityRule(name="CUSTOM", sources={"A.src"},
                        sinks={"B.snk": None}, remediation="fix")
    rules = RuleSet([rule])
    assert len(rules) == 1
    call = make_call("B", "snk")
    assert rule.sink_match(call) == "B.snk"
    assert rule.sink_params("B.snk") is None  # all params vulnerable

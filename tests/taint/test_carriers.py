"""Taint-carrier detection tests (paper §4.1.1)."""

from repro import TAJ, TAJConfig


def issues_of(source, config=None):
    result = TAJ(config or TAJConfig.hybrid_unbounded()) \
        .analyze_sources([source])
    return result


def test_carrier_detected_through_one_level():
    result = issues_of("""
class Box { String v; Box(String v) { this.v = v; } }
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(new Box(req.getParameter("p")));
  }
}""")
    assert result.issues == 1
    assert result.report.issues[0].via_carrier


def test_carrier_through_two_levels():
    result = issues_of("""
class Inner { String v; }
class Outer { Inner inner; Outer() { this.inner = new Inner(); } }
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Outer o = new Outer();
    Inner i = o.inner;
    i.v = req.getParameter("p");
    resp.getWriter().println(o);
  }
}""")
    assert result.issues == 1


def test_unrelated_carrier_not_flagged():
    result = issues_of("""
class Box { String v; Box(String v) { this.v = v; } }
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Box dirty = new Box(req.getParameter("p"));
    Box clean = new Box("constant");
    resp.getWriter().println(clean);
  }
}""")
    assert result.issues == 0


def test_carrier_inside_container():
    """Nested taint: a tainted carrier stored in a list that is printed."""
    result = issues_of("""
class Box { String v; Box(String v) { this.v = v; } }
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    LinkedList items = new LinkedList();
    items.add(new Box(req.getParameter("p")));
    resp.getWriter().println(items);
  }
}""")
    assert result.issues == 1


def test_depth_bound_cuts_nested_taint():
    deep = """
class L2 { String v; }
class L1 { L2 c; L1() { this.c = new L2(); } }
class L0 { L1 c; L0() { this.c = new L1(); } }
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    L0 box = new L0();
    L1 a = box.c;
    L2 b = a.c;
    b.v = req.getParameter("p");
    resp.getWriter().println(box);
  }
}"""
    unbounded = issues_of(deep)
    assert unbounded.issues == 1
    bounded = issues_of(
        deep, TAJConfig.hybrid_unbounded().with_budget(
            max_nested_depth=1))
    assert bounded.issues == 0


def test_sanitized_value_in_carrier_not_flagged():
    result = issues_of("""
class Box { String v; Box(String v) { this.v = v; } }
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Box b = new Box(URLEncoder.encode(req.getParameter("p")));
    resp.getWriter().println(b);
  }
}""")
    assert result.issues == 0


def test_carrier_passed_through_helper_method():
    result = issues_of("""
class Box { String v; Box(String v) { this.v = v; } }
class Render {
  static void show(HttpServletResponse resp, Box b) {
    resp.getWriter().println(b);
  }
}
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Render.show(resp, new Box(req.getParameter("p")));
  }
}""")
    assert result.issues == 1

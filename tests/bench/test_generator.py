"""Application-generator tests."""

from repro.bench import AppSpec, generate_app
from repro.ir import validate_program
from repro.modeling import prepare


def small_spec(**kwargs):
    base = dict(name="t", seed=7, tp_direct=1, tp_string=0, tp_map=0,
                tp_heap=0, tp_helper=0, tp_carrier=0, tp_sql=0, tp_leak=0,
                sanitized=0, trap_context=0, trap_factory=0,
                trap_xentry=0, trap_logger=0, cold_classes=0,
                lib_classes=0)
    base.update(kwargs)
    return AppSpec(**base)


def test_generation_is_deterministic():
    a = generate_app(small_spec(tp_map=2, trap_context=1))
    b = generate_app(small_spec(tp_map=2, trap_context=1))
    assert a.sources == b.sources
    assert a.planted == b.planted


def test_different_seeds_differ():
    a = generate_app(small_spec(tp_map=2, tp_heap=2, seed=1))
    b = generate_app(small_spec(tp_map=2, tp_heap=2, seed=2))
    assert a.sources != b.sources


def test_generated_source_lowers_and_validates():
    app = generate_app(AppSpec(name="full", seed=3, tp_reflect=1,
                               tp_thread=1, tp_deep=1, tp_chain=1,
                               tp_file=1, uses_struts=True, uses_ejb=True,
                               trap_xentry_long=1))
    prepared = prepare(app.sources, app.deployment_descriptor)
    validate_program(prepared.program)


def test_planted_count_matches_spec():
    spec = AppSpec(name="count", seed=1)
    app = generate_app(spec)
    tp = [p for p in app.planted if p.is_true_positive]
    assert len(tp) == spec.total_tp()


def test_each_plant_has_unique_sink_method():
    app = generate_app(AppSpec(name="uniq", seed=5, tp_direct=3,
                               tp_map=2, trap_context=2))
    sinks = [(p.rule, p.sink_method) for p in app.planted]
    assert len(sinks) == len(set(sinks))


def test_kinds_classified():
    app = generate_app(AppSpec(name="k", seed=2, tp_thread=1, tp_deep=1,
                               trap_xentry_long=1))
    kinds = {p.kind for p in app.planted}
    assert "tp" in kinds
    assert "tp_thread" in kinds and "tp_deep" in kinds
    assert "san" in kinds
    assert "trap_xentry_long" in kinds
    for p in app.planted:
        if p.kind in ("san",) or p.kind.startswith("trap"):
            assert not p.is_true_positive
        else:
            assert p.is_true_positive


def test_ejb_app_carries_descriptor():
    app = generate_app(small_spec(uses_ejb=True))
    assert app.deployment_descriptor


def test_sql_and_leak_rules_planted():
    app = generate_app(small_spec(tp_sql=1, tp_leak=1))
    rules = {p.rule for p in app.planted}
    assert {"SQLI", "INFO_LEAK", "XSS"} <= rules


def test_cold_code_is_reachable():
    from repro import TAJ, TAJConfig
    app = generate_app(small_spec(cold_classes=2, cold_methods=3))
    result = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources(
        app.sources, deployment_descriptor=app.deployment_descriptor)
    # Cold chains are called from servlets, so they appear in the CG.
    prepared_methods = result.cg_nodes
    assert prepared_methods > 5

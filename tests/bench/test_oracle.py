"""Oracle scoring tests."""

from repro.bench import AppSpec, Score, aggregate, generate_app, score_run
from repro.core.results import TAJResult
from repro.reporting import Report
from repro.reporting.report import Issue


def make_issue(rule, sink_method_qname):
    return Issue(rule=rule, remediation="r",
                 source="X.src/0@1", sink=f"{sink_method_qname}@9",
                 lcp=f"{sink_method_qname}@9",
                 sink_method="PrintWriter.println", source_line=1,
                 sink_line=2, via_carrier=False, flow_length=3,
                 grouped_flows=1)


def make_result(issues, failed=False, config="test"):
    report = Report(issues=issues, raw_flow_count=len(issues))
    result = TAJResult(config_name=config, report=report, failed=failed)
    return result


def simple_app():
    return generate_app(AppSpec(
        name="o", seed=1, tp_direct=1, tp_string=0, tp_map=0, tp_heap=0,
        tp_helper=0, tp_carrier=0, tp_sql=0, tp_leak=0, sanitized=1,
        trap_context=0, trap_factory=0, trap_xentry=0, trap_logger=0,
        cold_classes=0, lib_classes=0))


def test_matched_tp_counts():
    app = simple_app()
    tp = next(p for p in app.planted if p.is_true_positive)
    result = make_result([make_issue(tp.rule, tp.sink_method)])
    score = score_run(app, result)
    assert score.tp == 1 and score.fp == 0 and score.fn == 0


def test_report_on_sanitized_flow_is_fp():
    app = simple_app()
    san = next(p for p in app.planted if p.kind == "san")
    result = make_result([make_issue(san.rule, san.sink_method)])
    score = score_run(app, result)
    assert score.fp == 1
    assert score.false_kinds == {"san": 1}


def test_unmatched_report_is_fp():
    app = simple_app()
    result = make_result([make_issue("XSS", "Nowhere.doGet/2")])
    score = score_run(app, result)
    assert score.fp == 1
    assert score.false_kinds == {"unplanted": 1}


def test_missing_tp_is_fn():
    app = simple_app()
    score = score_run(app, make_result([]))
    assert score.fn == 1
    assert score.missed


def test_failed_run_counts_all_tp_as_fn():
    app = simple_app()
    score = score_run(app, make_result([], failed=True))
    assert score.failed
    assert score.fn == 1
    assert score.tp == 0


def test_accuracy_score():
    score = Score(app="a", config="c", tp=3, fp=1)
    assert score.accuracy == 0.75
    assert Score(app="a", config="c").accuracy == 0.0


def test_aggregate_excludes_failures():
    scores = [Score(app="a", config="c", tp=2, fp=2, seconds=1.0),
              Score(app="b", config="c", failed=True, fn=5)]
    agg = aggregate(scores)
    assert agg["tp"] == 2 and agg["fp"] == 2
    assert agg["failures"] == 1
    assert agg["accuracy"] == 0.5
    assert agg["mean_seconds"] == 1.0

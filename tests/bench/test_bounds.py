"""Budget-object tests."""

import pytest

from repro.bounds import Budget, BudgetExhausted, StateMeter, UNBOUNDED


def test_unbounded_has_no_limits():
    assert UNBOUNDED.max_cg_nodes is None
    assert UNBOUNDED.max_state_units is None


def test_copy_is_independent():
    budget = Budget(max_cg_nodes=5)
    clone = budget.copy()
    clone.max_cg_nodes = 9
    assert budget.max_cg_nodes == 5


def test_meter_charges_and_raises():
    meter = StateMeter(3)
    meter.charge()
    meter.charge(2)
    assert meter.used == 3
    with pytest.raises(BudgetExhausted) as exc:
        meter.charge()
    assert exc.value.dimension == "state_units"
    assert exc.value.limit == 3


def test_meter_unlimited():
    meter = StateMeter(None)
    meter.charge(10 ** 6)
    assert meter.used == 10 ** 6


def test_exhausted_message():
    err = BudgetExhausted("state_units", 42)
    assert "state_units" in str(err) and "42" in str(err)

"""Generator --scale knob: scaled specs, ground truth, analyzability."""

import pytest

from repro.bench.generator import AppSpec, generate_app, scaling_corpus
from repro.modeling import prepare


def test_scaled_multiplies_pattern_counts():
    spec = AppSpec(name="base", seed=3)
    scaled = spec.scaled(10)
    for name in AppSpec.SCALED_FIELDS:
        assert getattr(scaled, name) == getattr(spec, name) * 10
    # Per-class sizes and trait flags are not scaled.
    assert scaled.cold_methods == spec.cold_methods
    assert scaled.lib_methods == spec.lib_methods
    assert scaled.seed == spec.seed
    assert scaled.name == "base-x10"


def test_scaled_identity_and_validation():
    spec = AppSpec(name="base")
    assert spec.scaled(1) is spec
    with pytest.raises(ValueError):
        spec.scaled(0)


def test_scaled_ground_truth_scales():
    base = generate_app(AppSpec(name="s", seed=5))
    big = generate_app(AppSpec(name="s", seed=5).scaled(10))
    assert len(big.planted) == len(base.planted) * 10
    base_tp = sum(1 for p in base.planted if p.is_true_positive)
    big_tp = sum(1 for p in big.planted if p.is_true_positive)
    assert big_tp == base_tp * 10


def test_scaling_corpus_compiles_and_spreads_entrypoints():
    app = scaling_corpus(10)
    program = prepare(app.sources).program
    # ~4 flow methods per servlet: scale 10 must yield dozens of
    # entrypoints — the dimension the parallel sweep shards on.
    assert len(program.entrypoints) >= 25


def test_generator_cli_scale(tmp_path, capsys):
    from repro.bench.generator import main
    out = tmp_path / "corpus.jlang"
    assert main(["--scale", "2", "--out", str(out)]) == 0
    text = out.read_text(encoding="utf-8")
    assert "class" in text
    prepare([text])  # the emitted corpus must be a valid program

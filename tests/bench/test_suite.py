"""Suite-definition and harness tests (cheap subset of the full run)."""

import pytest

from repro.bench import (CS_COMPLETES, FIGURE4_APPS, benign_lib_classes,
                         compute_stats, format_figure4, format_table2,
                         format_table3, generate_suite, run_suite,
                         suite_specs)
from repro.core import TAJConfig


def test_suite_has_the_22_paper_benchmarks():
    specs = suite_specs()
    assert len(specs) == 22
    for name in ("A", "B", "I", "S", "ST", "Webgoat", "GridSphere",
                 "PersonalBlog", "Blojsom", "SnipSnap"):
        assert name in specs


def test_figure4_apps_are_in_the_suite():
    specs = suite_specs()
    assert all(name in specs for name in FIGURE4_APPS)
    assert len(FIGURE4_APPS) == 9


def test_cs_fn_traits_match_paper():
    """BlueBlog/I/SBM carry 2/1/2 cross-thread flows (the paper's CS
    false-negative counts); BlueBlog carries the one deep-nested flow."""
    specs = suite_specs()
    assert specs["BlueBlog"].tp_thread == 2
    assert specs["I"].tp_thread == 1
    assert specs["SBM"].tp_thread == 2
    assert specs["BlueBlog"].tp_deep == 1


def test_relative_sizes_follow_table2():
    """GridSphere and ST are the largest applications; I and BlueBlog
    among the smallest, mirroring the paper's Table 2 ordering."""
    stats = {}
    for name in ("I", "BlueBlog", "GridSphere", "ST", "Webgoat"):
        app = generate_suite([name])[name]
        stats[name] = compute_stats(app).app_methods
    assert stats["GridSphere"] > stats["Webgoat"] > stats["BlueBlog"]
    assert stats["ST"] > stats["Webgoat"]
    assert stats["I"] <= stats["BlueBlog"]


def test_benign_lib_classes_enumerated():
    app = generate_suite(["A"])["A"]
    libs = benign_lib_classes(app)
    assert libs
    assert all(lib in app.sources[0] for lib in libs)


@pytest.fixture(scope="module")
def small_results():
    apps = generate_suite(["I", "BlueBlog"])
    return apps, run_suite(apps)


def test_run_suite_covers_all_cells(small_results):
    _, results = small_results
    assert len(results.records) == 2 * 5
    assert results.cell("I", "cs") is not None
    assert results.cell("I", "nope") is None


def test_cs_completes_on_small_apps(small_results):
    _, results = small_results
    for app in ("I", "BlueBlog"):
        assert app in CS_COMPLETES
        assert not results.cell(app, "cs").failed


def test_cs_thread_false_negatives(small_results):
    _, results = small_results
    assert results.cell("I", "cs").score.fn == 1
    assert results.cell("BlueBlog", "cs").score.fn == 2
    assert results.cell("I", "hybrid-unbounded").score.fn == 0


def test_optimized_deep_nesting_fn_on_blueblog(small_results):
    _, results = small_results
    assert results.cell("BlueBlog", "hybrid-optimized").score.fn == 1
    assert results.cell("BlueBlog", "hybrid-unbounded").score.fn == 0


def test_sound_configs_agree_on_tp(small_results):
    _, results = small_results
    for app in ("I", "BlueBlog"):
        unb = results.cell(app, "hybrid-unbounded").score.tp
        ci = results.cell(app, "ci").score.tp
        assert unb == ci


def test_table_renderers_produce_rows(small_results):
    _, results = small_results
    t3 = format_table3(results)
    assert "BlueBlog" in t3 and "mean time" in t3
    f4 = format_figure4(results, apps=["I", "BlueBlog"])
    assert "accuracy" in f4


def test_table2_renderer():
    apps = generate_suite(["I"])
    stats = [compute_stats(apps["I"])]
    text = format_table2(stats)
    assert "I" in text and "Classes" in text

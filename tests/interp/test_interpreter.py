"""Concrete-interpreter unit tests."""

import pytest

from repro.interp import (Interpreter, JInt, JString, NULL, execute,
                          prepare_for_execution)


def run(source, descriptor=None, fault=False, fuel=100_000):
    program = prepare_for_execution([source], descriptor)
    return execute(program, fuel=fuel, fault_injection=fault)


def tainted(result):
    return result.tainted_events()


def test_arithmetic_and_loops():
    result = run("""
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    int total = 0;
    for (int i = 1; i <= 4; i++) { total = total + i; }
    if (total == 10) {
      resp.getWriter().println(req.getParameter("p"));
    }
  }
}""")
    assert len(tainted(result)) == 1  # 1+2+3+4 really is 10


def test_untainted_branch_not_taken():
    result = run("""
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    int total = 2 + 2;
    if (total == 5) {
      resp.getWriter().println(req.getParameter("p"));
    }
  }
}""")
    assert not tainted(result)


def test_source_taints_and_sanitizer_annotates():
    result = run("""
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("a"));
    resp.getWriter().println(URLEncoder.encode(req.getParameter("b")));
  }
}""")
    events = result.events
    assert len(events) == 2
    assert events[0].tainted
    assert not any("|san=" in label for label in events[0].all_taint)
    # Sanitizers annotate rather than strip; rule-specific judgement
    # happens at validation time.
    assert all("|san=URLEncoder.encode" in label
               for label in events[1].all_taint)


def test_string_concat_propagates_taint():
    result = run("""
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String greeting = "Hello " + req.getParameter("name") + "!";
    resp.getWriter().println(greeting);
  }
}""")
    assert tainted(result)


def test_string_methods_preserve_taint():
    result = run("""
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String v = req.getParameter("p").trim().toUpperCase();
    resp.getWriter().println(v);
  }
}""")
    assert tainted(result)


def test_heap_round_trip():
    result = run("""
class Box { String v; }
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Box b = new Box();
    b.v = req.getParameter("p");
    resp.getWriter().println(b.v);
  }
}""")
    assert tainted(result)


def test_carrier_state_taint():
    result = run("""
class Box {
  String v;
  Box(String v) { this.v = v; }
}
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Box b = new Box(req.getParameter("p"));
    resp.getWriter().println(b);
  }
}""")
    events = tainted(result)
    assert events and events[0].state_taint and not \
        events[0].direct_taint


def test_real_hashmap_bodies_execute():
    result = run("""
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    HashMap m = new HashMap();
    m.put("dirty", req.getParameter("p"));
    m.put("clean", "safe");
    resp.getWriter().println(m.get("clean"));
    resp.getWriter().println(m.get("dirty"));
  }
}""")
    events = result.events
    assert not events[0].tainted  # concrete map lookup is exact
    assert events[1].tainted


def test_reflection_executes_for_real():
    result = run("""
class Target {
  public String render(String v) { return v; }
}
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Target t = new Target();
    Class k = Class.forName("Target");
    Method m = k.getMethod("render");
    Object out = m.invoke(t, new Object[] { req.getParameter("p") });
    resp.getWriter().println(out);
  }
}""")
    assert tainted(result)


def test_thread_runs_inline():
    result = run("""
class Shared { static String chan; }
class Task implements Runnable {
  HttpServletResponse resp;
  Task(HttpServletResponse r) { this.resp = r; }
  public void run() {
    this.resp.getWriter().println(Shared.chan);
  }
}
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Shared.chan = req.getParameter("p");
    Thread t = new Thread(new Task(resp));
    t.start();
  }
}""")
    assert tainted(result)


def test_catch_blocks_need_fault_injection():
    source = """
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    try {
      int x = 1;
    } catch (Exception e) {
      resp.getWriter().println(e.getMessage());
    }
  }
}"""
    normal = run(source)
    assert not normal.events
    faulty = run(source, fault=True)
    events = tainted(faulty)
    assert events
    assert any(label.startswith("exc:") for label in
               events[0].all_taint)


def test_infinite_loop_hits_fuel():
    result = run("""
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    int x = 1;
    while (x > 0) { x = x + 1; }
  }
}""", fuel=5_000)
    assert result.aborted_entrypoints


def test_throw_aborts_entrypoint():
    result = run("""
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    RuntimeException e = new RuntimeException("boom");
    throw e;
  }
}""")
    assert result.aborted_entrypoints


def test_ejb_lookup_and_dispatch():
    result = run("""
class CartBean {
  String echo(String v) { return v; }
}
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    InitialContext ctx = new InitialContext();
    Object ref = ctx.lookup("ejb/Cart");
    Object home = PortableRemoteObject.narrow(ref, "CartHome");
    CartBean cart = (CartBean) home.create();
    resp.getWriter().println(cart.echo(req.getParameter("p")));
  }
}""", descriptor={"ejb/Cart": "CartBean"})
    assert tainted(result)


def test_string_builder_accumulates_taint():
    result = run("""
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    StringBuilder sb = new StringBuilder();
    sb.append("a");
    sb.append(req.getParameter("p"));
    resp.getWriter().println(sb.toString());
  }
}""")
    assert tainted(result)


def test_readfully_taints_buffer():
    result = run("""
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    RandomAccessFile f = new RandomAccessFile("x.bin");
    Object[] buffer = new Object[2];
    f.readFully(buffer);
    resp.getWriter().println(buffer[0]);
  }
}""")
    assert tainted(result)


def test_virtual_dispatch_at_runtime():
    result = run("""
class Base { String tag() { return "base"; } }
class Derived extends Base { String tag() { return "derived"; } }
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Base b = new Derived();
    if (b.tag().equals("derived")) {
      resp.getWriter().println(req.getParameter("p"));
    }
  }
}""")
    assert tainted(result)

"""Interpreter error paths: exception labels, fault-injection mode,
step-budget exhaustion, and partial instrumentation gating."""

import pytest

from repro.interp import (execute, parse_label, prepare_for_execution,
                          run_dynamic)

CATCH_APP = """
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    try {
      Statement st =
          DriverManager.getConnection("jdbc:app").createStatement();
      st.executeUpdate("UPDATE t SET c = 1");
    } catch (SQLException e) {
      resp.getWriter().println(e.getMessage());
    }
  }
}
"""

SYS_APP = """
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String home = System.getProperty("user.home");
    resp.getWriter().println(home);
  }
}
"""

LOOP_APP = """
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    int i = 0;
    while (i < 1000000) {
      i = i + 1;
    }
    resp.getWriter().println(req.getParameter("p"));
  }
}
"""

THROW_APP = """
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    throw new RuntimeException("boom");
  }
}
"""


# -- exception labels (exc:/sys:) ---------------------------------------------

def test_catch_block_unreachable_without_fault_injection():
    program = prepare_for_execution([CATCH_APP])
    result = execute(program, fault_injection=False)
    assert not result.tainted_events()


def test_fault_injection_mints_exc_label():
    program = prepare_for_execution([CATCH_APP])
    result = execute(program, fault_injection=True)
    tainted = result.tainted_events()
    assert tainted, "the catch block runs under fault injection"
    labels = {label for event in tainted for label in event.all_taint}
    assert labels
    for label in labels:
        parsed = parse_label(label)
        assert parsed.kind == "exc"
        assert parsed.origin_method == "S.doGet/2"
        assert parsed.sanitizers == frozenset()


def test_exc_label_witnesses_only_info_leak():
    program = prepare_for_execution([CATCH_APP])
    result = execute(program, fault_injection=True)
    label = next(label for event in result.tainted_events()
                 for label in event.all_taint)
    parsed = parse_label(label)
    assert parsed.witnesses("INFO_LEAK", frozenset())
    assert not parsed.witnesses("XSS", frozenset())
    assert not parsed.witnesses("SQLI", frozenset())


def test_system_property_mints_sys_label():
    program = prepare_for_execution([SYS_APP])
    result = execute(program)
    labels = {label for event in result.tainted_events()
              for label in event.all_taint}
    assert labels
    parsed = parse_label(next(iter(labels)))
    assert parsed.kind == "sys"
    assert parsed.witnesses("INFO_LEAK", frozenset())


def test_run_dynamic_merges_both_modes():
    summary = run_dynamic([CATCH_APP])
    assert summary.confirms("INFO_LEAK", "S.doGet/2")
    assert not summary.confirms("XSS", "S.doGet/2")


# -- step-budget exhaustion ---------------------------------------------------

def test_fuel_exhaustion_aborts_and_is_recorded():
    program = prepare_for_execution([LOOP_APP])
    result = execute(program, fuel=100)
    assert result.aborted_entrypoints
    assert result.fuel_exhausted == result.aborted_entrypoints
    assert not result.events, "the sink after the loop never runs"


def test_enough_fuel_reaches_the_sink():
    program = prepare_for_execution([LOOP_APP])
    result = execute(program, fuel=10_000_000)
    assert not result.fuel_exhausted
    assert result.tainted_events()


def test_throw_aborts_without_fuel_blame():
    program = prepare_for_execution([THROW_APP])
    result = execute(program)
    assert result.aborted_entrypoints
    assert result.fuel_exhausted == []


def test_deep_call_chain_survives_default_recursion_limit():
    """Scaled corpus apps chain calls hundreds of frames deep; the
    interpreter must not die on CPython's default recursion ceiling."""
    import sys
    depth = 600
    methods = []
    for i in range(depth):
        if i + 1 < depth:
            body = f"    C.f{i + 1}(req, resp);"
        else:
            body = '    resp.getWriter().println(req.getParameter("p"));'
        methods.append(
            "  static void f%d(HttpServletRequest req,"
            " HttpServletResponse resp) {\n%s\n  }" % (i, body))
    app = """
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    C.f0(req, resp);
  }
}
class C {
%s
}
""" % "\n".join(methods)
    program = prepare_for_execution([app])
    before = sys.getrecursionlimit()
    result = execute(program)
    assert sys.getrecursionlimit() == before, "limit is restored"
    assert not result.aborted_entrypoints
    assert result.tainted_events()


# -- partial instrumentation --------------------------------------------------

def test_uninstrumented_source_mints_no_labels():
    program = prepare_for_execution([SYS_APP])
    result = execute(program, source_methods=frozenset({"Other.m/1"}))
    assert result.events, "sinks still record (sink set is None)"
    assert not result.tainted_events()


def test_uninstrumented_sink_records_no_events():
    program = prepare_for_execution([SYS_APP])
    result = execute(program, sink_methods=frozenset({"Other.m/1"}))
    assert not result.events
    assert "S.doGet/2" in result.entered_methods


def test_uninstrumented_catch_mints_no_exc_label():
    program = prepare_for_execution([CATCH_APP])
    result = execute(program, fault_injection=True,
                     source_methods=frozenset({"Other.m/1"}))
    assert not result.tainted_events()


def test_seed_stamps_source_payloads():
    program = prepare_for_execution([SYS_APP])
    plain = execute(program)
    seeded = execute(program, seed=9)
    text = lambda run: {str(e.direct_taint) for e in run.events}
    # Same labels (identity is the source site, not the payload) ...
    assert text(plain) == text(seeded)
    # ... and the run is deterministic per seed.
    again = execute(program, seed=9)
    assert [e.all_taint for e in seeded.events] == \
        [e.all_taint for e in again.events]


def test_entered_methods_records_coverage():
    program = prepare_for_execution([SYS_APP])
    result = execute(program)
    assert "S.doGet/2" in result.entered_methods

"""Cross-validation: dynamic execution vs static findings vs ground
truth — the strongest soundness evidence in the repository."""

import pytest

from repro import TAJ, TAJConfig
from repro.bench import AppSpec, generate_app
from repro.bench.micro import MICRO_CASES, MICRO_DESCRIPTORS, MOTIVATING
from repro.interp import run_dynamic

# Micro cases whose flows the sequential interpreter can realize.
# Excluded: none — every positive case is dynamically realizable.
_POSITIVE_RULES = {
    name: expected for name, (___, expected) in MICRO_CASES.items()
    if any(v > 0 for v in expected.values())
}


@pytest.mark.parametrize("name", sorted(_POSITIVE_RULES))
def test_positive_micro_cases_are_dynamically_confirmed(name):
    source, expected = MICRO_CASES[name]
    summary = run_dynamic([source], MICRO_DESCRIPTORS.get(name))
    assert summary.witnesses, f"{name}: no tainted sink at run time"


@pytest.mark.parametrize("name", [
    n for n, (_, expected) in sorted(MICRO_CASES.items())
    if all(v == 0 for v in expected.values())])
def test_negative_micro_cases_confirm_nothing(name):
    """Sanitized / benign cases never dynamically confirm any rule:
    reporting them statically would be a false positive."""
    source, _ = MICRO_CASES[name]
    summary = run_dynamic([source], MICRO_DESCRIPTORS.get(name))
    for rule in ("XSS", "SQLI", "MALICIOUS_FILE", "INFO_LEAK"):
        for witness in summary.witnesses:
            assert not summary.confirms(rule, witness.sink_method), \
                f"{name}: {rule} at {witness.sink_method}"


def test_motivating_dynamic_matches_static():
    summary = run_dynamic([MOTIVATING])
    static = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources(
        [MOTIVATING])
    # Exactly one sink method receives tainted data dynamically, and it
    # is the one the static analysis reports.
    methods = {w.sink_method for w in summary.witnesses}
    assert methods == {"Motivating.doGet/2"}
    assert static.issues == 1
    assert summary.confirms("XSS", "Motivating.doGet/2")


def test_generated_app_ground_truth_is_dynamically_sound():
    """For a generated benchmark app, every planted TP that the
    sequential schedule can realize is dynamically confirmed, and no
    sanitized plant ever fires."""
    app = generate_app(AppSpec(name="dyn", seed=9, tp_reflect=1,
                               tp_thread=1, uses_struts=True,
                               uses_ejb=True, trap_xentry=0,
                               trap_logger=0, trap_context=0,
                               trap_factory=0, cold_classes=0,
                               lib_classes=0))
    summary = run_dynamic(app.sources, app.deployment_descriptor)
    confirmed = 0
    for plant in app.planted:
        if plant.kind == "san":
            assert not summary.confirms(plant.rule, plant.sink_method), \
                f"sanitized plant fired: {plant}"
        elif plant.is_true_positive:
            if summary.confirms(plant.rule, plant.sink_method):
                confirmed += 1
    tps = sum(1 for p in app.planted if p.is_true_positive)
    # The sequential schedule realizes (nearly) all planted TPs.
    assert confirmed >= tps - 1, (confirmed, tps)


def test_dynamic_is_a_lower_bound_for_sound_static_analysis():
    """Anything the interpreter confirms, the sound static configs
    report (on the micro suite)."""
    for name, (source, expected) in sorted(MICRO_CASES.items()):
        descriptor = MICRO_DESCRIPTORS.get(name)
        summary = run_dynamic([source], descriptor)
        confirming = [w for w in summary.witnesses
                      if any(summary.confirms(rule, w.sink_method)
                             for rule in ("XSS", "SQLI",
                                          "MALICIOUS_FILE",
                                          "INFO_LEAK"))]
        if not confirming:
            continue
        static = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources(
            [source], deployment_descriptor=descriptor)
        static_sinks = {i.sink.split("@")[0] for i in
                        static.report.issues}
        for witness in confirming:
            assert witness.sink_method in static_sinks, \
                f"{name}: dynamic flow missed statically"

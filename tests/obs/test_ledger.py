"""Run ledger: fingerprints, record schema, append/read, filtering."""

import json

import pytest

from repro.core import TAJConfig
from repro.core.results import PhaseTimes, TAJResult
from repro.obs.ledger import (LEDGER_SCHEMA, LedgerError, append_record,
                              comparable_records, config_fingerprint,
                              corpus_hash, host_fingerprint,
                              make_record, read_ledger,
                              record_from_result, sha256_fingerprint)


def _record(**overrides):
    base = dict(kind="analysis", config_name="hybrid-optimized",
                fingerprint="abcd" * 4,
                corpus={"hash": "beef" * 4, "files": 2},
                phases={"taint": 0.5, "modeling": 0.1},
                seconds=0.6,
                counters={"taint.flows": 3})
    base.update(overrides)
    return make_record(**base)


def test_sha256_fingerprint_is_stable_and_order_independent():
    a = sha256_fingerprint({"x": 1, "y": 2})
    b = sha256_fingerprint({"y": 2, "x": 1})
    assert a == b
    assert len(a) == 16
    assert a != sha256_fingerprint({"x": 1, "y": 3})


def test_corpus_hash_order_independent_content_sensitive():
    assert corpus_hash(["aa", "bb"]) == corpus_hash(["bb", "aa"])
    assert corpus_hash(["aa", "bb"]) != corpus_hash(["aa", "bc"])


def test_config_fingerprint_tracks_every_knob():
    base = TAJConfig.hybrid_optimized()
    assert config_fingerprint(base) == config_fingerprint(
        TAJConfig.hybrid_optimized())
    # Any knob change — including nested dataclasses and new-PR knobs
    # like profile — moves the fingerprint.
    assert config_fingerprint(base) != config_fingerprint(
        base.with_budget(max_cg_nodes=7))
    assert config_fingerprint(base) != config_fingerprint(
        base.with_profile())
    assert config_fingerprint(base) != config_fingerprint(
        base.with_jobs(4))


def test_host_fingerprint_shape():
    host = host_fingerprint()
    assert set(host) == {"python", "cores", "platform"}
    assert host["cores"] >= 1


def test_make_record_schema():
    record = _record(commit="cafe1234", issues=2, raw_flows=3,
                     confirm={"confirmed": 2})
    assert record["schema"] == LEDGER_SCHEMA
    assert record["commit"] == "cafe1234"
    assert record["phases"] == {"modeling": 0.1, "taint": 0.5}
    assert list(record["phases"]) == ["modeling", "taint"]  # sorted
    assert record["confirm"] == {"confirmed": 2}
    json.dumps(record)  # must be JSON-clean as-is


def test_record_from_result_uses_span_times_and_work_counters():
    config = TAJConfig.hybrid_optimized()
    result = TAJResult(
        config_name=config.name,
        times=PhaseTimes(modeling=0.1, pointer_analysis=0.2, sdg=0.05,
                         taint=0.3, reporting=0.01),
        metrics={"counters": {"pointer.propagations": 42,
                              "taint.flows": 3,
                              "pointer.pts_keys_irrelevant": 9}},
    )
    record = record_from_result(result, config, ["class A {}"],
                                commit="c0ffee")
    assert record["kind"] == "analysis"
    assert record["config"]["name"] == "hybrid-optimized"
    assert record["config"]["fingerprint"] == config_fingerprint(config)
    assert record["corpus"] == {"hash": corpus_hash(["class A {}"]),
                                "files": 1}
    assert record["phases"]["taint"] == pytest.approx(0.3)
    assert "confirm" not in record["phases"]  # zero phases dropped
    assert record["counters"] == {"pointer.propagations": 42,
                                  "taint.flows": 3}
    assert record["seconds"] == pytest.approx(0.66)


def test_append_and_read_round_trip(tmp_path):
    path = tmp_path / "ledger.jsonl"
    first = _record()
    second = _record(seconds=0.7)
    append_record(str(path), first)
    append_record(str(path), second)
    records = read_ledger(str(path))
    assert len(records) == 2
    assert records[0] == first
    assert records[1] == second


def test_read_ledger_skips_blank_lines(tmp_path):
    path = tmp_path / "ledger.jsonl"
    append_record(str(path), _record())
    with open(path, "a") as handle:
        handle.write("\n\n")
    append_record(str(path), _record())
    assert len(read_ledger(str(path))) == 2


def test_read_ledger_names_the_malformed_line(tmp_path):
    path = tmp_path / "ledger.jsonl"
    append_record(str(path), _record())
    with open(path, "a") as handle:
        handle.write("not json\n")
    with pytest.raises(LedgerError, match=r":2:"):
        read_ledger(str(path))


def test_read_ledger_skips_crash_truncated_final_line(tmp_path):
    """A writer killed mid-append leaves an unterminated partial JSON
    tail; reading must skip it (with a warning naming the line), not
    raise — the committed history before it stays usable."""
    path = tmp_path / "ledger.jsonl"
    first = _record()
    append_record(str(path), first)
    whole = json.dumps(_record(seconds=9.0))
    with open(path, "a") as handle:
        handle.write(whole[:len(whole) // 2])  # no trailing newline
    with pytest.warns(UserWarning, match=r":2:.*crash-truncated"):
        records = read_ledger(str(path))
    assert records == [first]


def test_read_ledger_truncation_tolerance_needs_missing_newline(
        tmp_path):
    """The tolerance is only for the unterminated tail: a malformed
    line that *is* newline-terminated was a complete (bad) write and
    still raises."""
    path = tmp_path / "ledger.jsonl"
    append_record(str(path), _record())
    with open(path, "a") as handle:
        handle.write('{"half": \n')
    with pytest.raises(LedgerError, match=r":2:"):
        read_ledger(str(path))


def test_read_ledger_rejects_unknown_schema(tmp_path):
    path = tmp_path / "ledger.jsonl"
    bad = _record()
    bad["schema"] = 99
    append_record(str(path), bad)
    with pytest.raises(LedgerError, match="schema"):
        read_ledger(str(path))


def test_comparable_records_filters_on_kind_config_corpus():
    reference = _record()
    same = _record(seconds=9.0)
    other_kind = _record(kind="bench")
    other_config = _record(fingerprint="ffff" * 4)
    other_corpus = _record(corpus={"hash": "0" * 16, "files": 2})
    got = comparable_records(
        [same, other_kind, other_config, other_corpus, reference],
        reference)
    assert got == [same]


def test_comparable_records_same_host_gate():
    reference = _record()
    twin = _record(seconds=1.0)
    foreign = _record(seconds=2.0)
    foreign["host"] = {"python": "9.9", "cores": 64,
                       "platform": "plan9"}
    assert comparable_records([twin, foreign], reference,
                              same_host=True) == [twin]
    assert comparable_records([twin, foreign], reference) == \
        [twin, foreign]

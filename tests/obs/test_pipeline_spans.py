"""Integration: the full pipeline under observability.

Asserts the tentpole contract — every pipeline phase emits exactly one
top-level ``phase.*`` span, phase times derive from those spans, the
registry snapshot carries the solver counters, and the disabled bundle
records nothing while the analysis still works.
"""

import pytest

from repro import TAJ, TAJConfig
from repro.obs import DISABLED, Observability

APP = """
class Hello extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String name = req.getParameter("name");
    resp.getWriter().println(name);
  }
}
"""

PHASES = ["phase.modeling", "phase.pointer_analysis", "phase.sdg",
          "phase.taint", "phase.reporting"]


@pytest.fixture(scope="module")
def traced_run():
    obs = Observability(audit=True, memory=True)
    result = TAJ(TAJConfig.hybrid_optimized(),
                 obs=obs).analyze_sources([APP])
    return obs, result


def test_every_phase_emits_exactly_one_top_level_span(traced_run):
    obs, _ = traced_run
    assert [root.name for root in obs.tracer.roots] == PHASES
    for root in obs.tracer.roots:
        assert root.end is not None


def test_phase_times_derive_from_spans(traced_run):
    obs, result = traced_run
    durations = obs.tracer.phase_durations()
    times = result.times
    assert times.modeling == pytest.approx(durations["modeling"])
    assert times.pointer_analysis == pytest.approx(
        durations["pointer_analysis"])
    assert times.sdg == pytest.approx(durations["sdg"])
    assert times.taint == pytest.approx(durations["taint"])
    assert times.reporting == pytest.approx(durations["reporting"])
    assert times.total == pytest.approx(sum(durations.values()))


def test_solver_subphases_nest_under_pointer_analysis(traced_run):
    obs, _ = traced_run
    (pointer,) = obs.tracer.find("phase.pointer_analysis")
    children = {c.name for c in pointer.children}
    assert {"pointer.constraint_adding",
            "pointer.constraint_solving"} <= children
    assert pointer.attrs["cg_nodes"] > 0


def test_sdg_and_modeling_subspans(traced_run):
    obs, _ = traced_run
    (sdg,) = obs.tracer.find("phase.sdg")
    assert [c.name for c in sdg.children] == [
        "sdg.build", "sdg.direct_edges", "sdg.heap_graph"]
    (modeling,) = obs.tracer.find("phase.modeling")
    child_names = {c.name for c in modeling.children}
    assert "modeling.ssa" in child_names and "modeling.lower" \
        in child_names


def test_taint_rule_spans(traced_run):
    obs, result = traced_run
    (taint,) = obs.tracer.find("phase.taint")
    rule_spans = [c for c in taint.children if c.name == "taint.rule"]
    assert rule_spans, "each consulted rule opens a taint.rule span"
    assert sum(span.attrs.get("flows", 0) for span in rule_spans) \
        == len(result.flows)


def test_registry_snapshot_contents(traced_run):
    _, result = traced_run
    metrics = result.metrics
    assert metrics["counters"]["pointer.propagations"] > 0
    assert metrics["counters"]["report.issues"] == result.issues
    assert metrics["gauges"]["callgraph.nodes"] == result.cg_nodes
    assert metrics["gauges"]["memory.peak_bytes"] > 0
    assert metrics["gauges"]["pointer.worklist_depth_peak"] > 0
    solving = metrics["timers"]["pointer.constraint_solving"]
    assert solving["count"] == 1 and solving["max"] >= solving["p50"]
    assert metrics["histograms"]["pointer.pts_set_size"]["count"] > 0


def test_solver_stats_come_from_the_registry(traced_run):
    _, result = traced_run
    stats = result.solver_stats()
    assert stats["propagations"] \
        == result.metrics["counters"]["pointer.propagations"]
    assert stats["time_constraint_solving"] == pytest.approx(
        result.metrics["timers"]["pointer.constraint_solving"]["total"])


def test_provenance_rides_on_the_result(traced_run):
    _, result = traced_run
    flows = result.provenance["flows"]
    assert len(flows) == len(result.flows)
    assert all(w["grouping"]["grouped"] for w in flows)
    consulted = {r["rule"] for r in
                 result.provenance["rules_consulted"]}
    assert "XSS" in consulted


def test_disabled_bundle_records_nothing():
    result = TAJ(TAJConfig.hybrid_optimized(),
                 obs=DISABLED).analyze_sources([APP])
    assert result.issues == 1
    assert result.metrics == {}
    assert result.provenance == {}
    assert DISABLED.tracer.roots == ()
    # Span-derived timing collapses to zero by design (documented):
    assert result.times.total == 0.0


def test_default_run_still_collects_metrics():
    result = TAJ(TAJConfig.hybrid_optimized()).analyze_sources([APP])
    assert result.metrics["counters"]["pointer.propagations"] > 0
    assert result.times.total > 0.0
    # audit and memory sampling stay opt-in
    assert result.provenance == {}
    assert "memory.peak_bytes" not in result.metrics["gauges"]

"""Progress heartbeat: field state, rendering, thread, null mode."""

import io
import time

import pytest

from repro.bench.securibench import CASES
from repro.core import TAJ, TAJConfig
from repro.obs import Observability
from repro.obs.progress import NULL_PROGRESS, NullProgress, Progress
from repro.obs.tracer import Tracer


def test_update_and_clear_fields():
    progress = Progress(stream=io.StringIO())
    progress.update(worklist=12, rule="XSS")
    progress.update(worklist=9)
    assert progress.fields == {"worklist": 9, "rule": "XSS"}
    progress.clear("rule", "never-set")
    assert progress.fields == {"worklist": 9}


def test_render_line_orders_known_fields_first():
    progress = Progress(stream=io.StringIO())
    progress.update(zebra=1, flows=3, worklist=7)
    line = progress.render_line()
    assert line.startswith("[taj ")
    assert line.index("worklist=7") < line.index("flows=3") < \
        line.index("zebra=1")


def test_current_phase_reads_outermost_open_span():
    tracer = Tracer()
    progress = Progress(stream=io.StringIO(), tracer=tracer)
    assert progress.current_phase() is None
    with tracer.span("phase.pointer_analysis"):
        with tracer.span("pointer.constraint_solving"):
            assert progress.current_phase() == "pointer_analysis"
    assert progress.current_phase() is None
    assert "phase=" not in progress.render_line()


def test_heartbeat_thread_emits_lines():
    stream = io.StringIO()
    progress = Progress(stream=stream, interval=0.01)
    progress.update(rule="XSS")
    with progress:
        time.sleep(0.08)
    assert progress.beats >= 2
    lines = stream.getvalue().splitlines()
    assert lines and all(line.startswith("[taj ") for line in lines)
    assert any("rule=XSS" in line for line in lines)
    # stop() is idempotent and start() restarts cleanly.
    progress.stop()
    progress.start()
    progress.stop()


def test_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        Progress(stream=io.StringIO(), interval=0.0)


def test_null_progress_is_inert():
    NULL_PROGRESS.update(worklist=1)
    NULL_PROGRESS.clear("worklist")
    assert NULL_PROGRESS.fields == {}
    assert NULL_PROGRESS.render_line() == ""
    assert NULL_PROGRESS.current_phase() is None
    assert not NULL_PROGRESS.enabled
    with NULL_PROGRESS as same:
        assert same is NULL_PROGRESS
    NULL_PROGRESS.emit()
    assert NULL_PROGRESS.beats == 0
    assert isinstance(NULL_PROGRESS, NullProgress)


def test_pipeline_seams_populate_progress_fields():
    """The solver and the taint sweep publish their progress through
    the bundle; a run leaves the transient fields cleared."""
    sources = [src for group in CASES.values()
               for src, _truth in group.values()][:4]
    stream = io.StringIO()
    progress = Progress(stream=stream, interval=0.005)
    obs = Observability(progress=progress)
    seen = {}

    original = progress.update

    def spy(**fields):
        seen.update(fields)
        original(**fields)

    progress.update = spy
    with progress:
        TAJ(TAJConfig.hybrid_optimized(), obs=obs) \
            .analyze_sources(sources)
    assert "worklist" in seen and "cg_nodes" in seen  # solver seam
    assert "rule" in seen and "rules" in seen         # taint seam
    assert "flows" in seen
    # Transient sweep fields are cleared once the sweep ends.
    assert "rule" not in progress.fields
    assert progress.beats >= 1
    assert "[taj " in stream.getvalue()

"""Provenance audit: witness chains and grouping decisions.

The audit is duck-typed against TaintFlow/SecurityRule/FlowGroup, so
these tests drive it with minimal stand-ins; the integration test in
``test_pipeline_spans.py`` exercises it against the real pipeline.
"""

from repro.obs import ProvenanceAudit
from repro.obs.provenance import NULL_AUDIT


class FakeFlow:
    def __init__(self, rule="XSS", source="doGet@1", sink="doGet@5",
                 length=3):
        self.rule = rule
        self.source = source
        self.sink = sink
        self.sink_display = "PrintWriter.println"
        self.length = length
        self.via_carrier = False
        self.heap_transitions = 1
        self.lcp = "doGet@3"

    def key(self):
        return (self.rule, self.source, self.sink)


class FakeRule:
    name = "XSS"
    sanitizers = frozenset({"encodeForHTML", "escapeXml"})
    sinks = ("println", "write")


class FakeGroupKey:
    remediation = "html-encode-output"
    lcp = "doGet@3"


class FakeGroup:
    def __init__(self, members):
        self.members = members
        self.size = len(members)
        self.representative = members[0]
        self.key = FakeGroupKey()


def test_witness_chain_fields():
    audit = ProvenanceAudit()
    flow = FakeFlow()
    audit.record_rule(FakeRule(), seeds=4, flows=1)
    audit.record_flow(flow, FakeRule(), seeds=4)
    payload = audit.to_payload()

    (rule,) = payload["rules_consulted"]
    assert rule == {"rule": "XSS", "seeds": 4,
                    "sanitizers": ["encodeForHTML", "escapeXml"],
                    "sinks": 2, "flows": 1}

    (witness,) = payload["flows"]
    assert witness["source"] == "doGet@1"
    assert witness["sink"] == "doGet@5"
    assert witness["path_length"] == 3
    assert witness["heap_transitions"] == 1
    assert witness["rule_seeds"] == 4
    assert witness["sanitizers_checked"] == ["encodeForHTML",
                                             "escapeXml"]
    # No reporting phase yet: grouping decision still unset.
    assert witness["grouping"]["grouped"] is False


def test_grouping_decision_marks_representative():
    audit = ProvenanceAudit()
    rep = FakeFlow(source="doGet@1")
    dup = FakeFlow(source="doGet@2")
    for flow in (rep, dup):
        audit.record_flow(flow, FakeRule(), seeds=2)
    audit.record_groups([FakeGroup([rep, dup])])

    by_source = {w["source"]: w for w in audit.to_payload()["flows"]}
    for witness in by_source.values():
        grouping = witness["grouping"]
        assert grouping["grouped"] is True
        assert grouping["group_size"] == 2
        assert grouping["remediation"] == "html-encode-output"
        assert grouping["group_lcp"] == "doGet@3"
    assert by_source["doGet@1"]["grouping"]["representative"] is True
    assert by_source["doGet@2"]["grouping"]["representative"] is False


def test_record_groups_tolerates_unseen_flows():
    audit = ProvenanceAudit()
    audit.record_groups([FakeGroup([FakeFlow()])])
    assert audit.to_payload()["flows"] == []


def test_null_audit_is_inert():
    NULL_AUDIT.record_rule(FakeRule(), seeds=1, flows=0)
    NULL_AUDIT.record_flow(FakeFlow(), FakeRule(), seeds=1)
    NULL_AUDIT.record_groups([])
    assert NULL_AUDIT.to_payload() == {}
    assert not NULL_AUDIT.enabled

"""Regression sentinel: thresholds, wall gating, CLI entry point."""

import json

import pytest

from repro.obs.compare import (Comparison, compare, compare_ledger,
                               main as compare_main, render)
from repro.obs.ledger import append_record, make_record


def _record(taint=0.10, modeling=0.05, propagations=1000, flows=5,
            **overrides):
    base = dict(kind="analysis", config_name="hybrid-optimized",
                fingerprint="abcd" * 4,
                corpus={"hash": "beef" * 4, "files": 3},
                phases={"taint": taint, "modeling": modeling},
                seconds=taint + modeling,
                counters={"pointer.propagations": propagations,
                          "taint.flows": flows})
    base.update(overrides)
    return make_record(**base)


def test_steady_history_is_ok():
    baseline = [_record(taint=t) for t in (0.10, 0.11, 0.09, 0.10)]
    comparison = compare(_record(taint=0.105), baseline)
    assert comparison.ok
    assert comparison.wall_gated
    metrics = {f.metric for f in comparison.findings}
    assert {"phase.taint", "phase.modeling", "seconds",
            "counter.pointer.propagations",
            "counter.taint.flows"} <= metrics


def test_injected_2x_phase_slowdown_is_flagged_and_named():
    """Acceptance: a 2x slowdown injected into one phase trips the
    sentinel, and the finding names that phase."""
    baseline = [_record(taint=t) for t in (0.10, 0.11, 0.09, 0.10,
                                           0.105)]
    comparison = compare(_record(taint=0.20), baseline)
    assert not comparison.ok
    flagged = [f.metric for f in comparison.regressions]
    # The per-phase diff names the culprit (the total trips too; the
    # untouched phase and the counters do not).
    assert "phase.taint" in flagged
    assert "phase.modeling" not in flagged
    assert not any(metric.startswith("counter.") for metric in flagged)
    assert "phase.taint" in render(comparison)


def test_counter_regression_is_flagged_even_without_wall_gates():
    baseline = [_record() for _ in range(3)]
    comparison = compare(_record(propagations=1200), baseline,
                         wall=False)
    assert not comparison.wall_gated
    assert [f.metric for f in comparison.regressions] == \
        ["counter.pointer.propagations"]
    # +10% exactly is the threshold edge, not a regression; noise
    # below it never trips.
    assert compare(_record(propagations=1100), baseline, wall=False).ok


def test_mad_band_tolerates_noisy_baselines():
    # Noisy window: median 0.10, MAD 0.02 -> threshold well above the
    # ratio floor, so a value inside the noise band passes.
    baseline = [_record(taint=t) for t in (0.06, 0.08, 0.10, 0.12,
                                           0.14)]
    assert compare(_record(taint=0.155), baseline).ok


def test_min_abs_floor_protects_microsecond_phases():
    baseline = [_record(modeling=0.0002) for _ in range(4)]
    # 5x relative, but under the +10ms absolute floor: jitter, not
    # signal.
    comparison = compare(_record(modeling=0.001), baseline)
    flagged = [f.metric for f in comparison.regressions]
    assert "phase.modeling" not in flagged


def _write_ledger(tmp_path, records):
    tmp_path.mkdir(parents=True, exist_ok=True)
    path = tmp_path / "ledger.jsonl"
    for record in records:
        append_record(str(path), record)
    return str(path)


def test_compare_ledger_insufficient_history(tmp_path):
    path = _write_ledger(tmp_path, [_record(), _record()])
    comparison = compare_ledger(path)
    assert comparison.ok
    assert "insufficient history" in comparison.skipped_reason
    assert comparison.findings == []


def test_compare_ledger_empty(tmp_path):
    path = tmp_path / "ledger.jsonl"
    path.write_text("")
    comparison = compare_ledger(str(path))
    assert comparison.ok and comparison.skipped_reason == "empty ledger"


def test_compare_ledger_flags_newest_against_window(tmp_path):
    records = [_record(taint=t) for t in (0.10, 0.11, 0.09, 0.10)]
    records.append(_record(taint=0.25))
    comparison = compare_ledger(_write_ledger(tmp_path, records),
                                wall="on")
    assert not comparison.ok
    flagged = {f.metric for f in comparison.regressions}
    assert "phase.taint" in flagged


def test_compare_ledger_auto_skips_wall_on_foreign_host(tmp_path):
    records = [_record(taint=0.10) for _ in range(3)]
    for record in records:
        record["host"] = {"python": "9.9", "cores": 64,
                          "platform": "plan9"}
    records.append(_record(taint=0.50))   # 5x — but host differs
    comparison = compare_ledger(_write_ledger(tmp_path, records))
    assert comparison.ok                  # counters still pass
    assert not comparison.wall_gated
    assert "host fingerprint differs" in comparison.skipped_reason
    # Forcing the gates on flags it.
    assert not compare_ledger(_write_ledger(tmp_path, records),
                              wall="on").ok


def test_compare_ledger_ignores_incomparable_records(tmp_path):
    foreign = _record(taint=9.0, fingerprint="ffff" * 4)
    records = [foreign, _record(taint=0.10), _record(taint=0.11),
               _record(taint=0.10)]
    comparison = compare_ledger(_write_ledger(tmp_path, records),
                                wall="on")
    assert comparison.baseline_size == 2
    assert comparison.ok


def test_cli_check_exit_codes(tmp_path, capsys):
    steady = [_record(taint=t) for t in (0.10, 0.11, 0.09, 0.10)]
    ok_path = _write_ledger(tmp_path / "ok", steady + [_record(0.105)])
    assert compare_main([ok_path, "--check", "--wall", "on"]) == 0
    bad_path = _write_ledger(tmp_path / "bad", steady + [_record(0.30)])
    assert compare_main([bad_path, "--check", "--wall", "on"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out and "phase.taint" in out


def test_cli_json_output(tmp_path, capsys):
    records = [_record() for _ in range(3)] + [_record(taint=0.5)]
    path = _write_ledger(tmp_path, records)
    assert compare_main([path, "--json", "--wall", "on"]) == 0  # no --check
    payload = json.loads(capsys.readouterr().out)
    assert payload["regressions"] == ["phase.taint", "seconds"]
    assert payload["baseline_size"] == 3


def test_comparison_payload_round_trips():
    comparison = compare(_record(taint=0.2),
                         [_record(taint=0.1) for _ in range(3)])
    payload = comparison.to_payload()
    json.dumps(payload)
    assert payload["wall_gated"] is True
    assert "phase.taint" in payload["regressions"]
    assert isinstance(Comparison(**{
        "baseline_size": payload["baseline_size"],
        "wall_gated": payload["wall_gated"],
        "skipped_reason": payload["skipped_reason"],
        "findings": [],
    }), Comparison)

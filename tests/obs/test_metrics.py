"""Metrics registry: counters, gauges, percentiles, null mode."""

import pytest

from repro.obs import MetricsRegistry, percentile
from repro.obs.metrics import NULL_REGISTRY, Histogram


def test_counters_accumulate():
    reg = MetricsRegistry()
    reg.inc("pointer.propagations")
    reg.inc("pointer.propagations", 4)
    assert reg.counter_value("pointer.propagations") == 5
    assert reg.counter_value("missing") == 0


def test_gauges_last_write_and_high_water():
    reg = MetricsRegistry()
    reg.gauge("memory.current_bytes", 100)
    reg.gauge("memory.current_bytes", 40)
    reg.gauge_max("memory.peak_bytes", 100)
    reg.gauge_max("memory.peak_bytes", 40)
    assert reg.gauge_value("memory.current_bytes") == 40
    assert reg.gauge_value("memory.peak_bytes") == 100
    assert reg.gauge_value("missing") is None


def test_nearest_rank_percentiles():
    data = sorted(float(v) for v in range(1, 101))
    assert percentile(data, 50.0) == 50.0
    assert percentile(data, 95.0) == 95.0
    assert percentile(data, 0.0) == 1.0
    assert percentile(data, 100.0) == 100.0
    assert percentile([7.0], 50.0) == 7.0
    with pytest.raises(ValueError):
        percentile([], 50.0)


def test_timer_summary_shape():
    reg = MetricsRegistry()
    for seconds in (0.1, 0.2, 0.3, 0.4, 1.0):
        reg.record_time("pointer.constraint_solving", seconds)
    summary = reg.timer_summary("pointer.constraint_solving")
    assert summary["count"] == 5
    assert summary["total"] == pytest.approx(2.0)
    assert summary["p50"] == pytest.approx(0.3)
    assert summary["p95"] == pytest.approx(1.0)
    assert summary["max"] == pytest.approx(1.0)


def test_empty_timer_summary_is_zeroed():
    assert MetricsRegistry().timer_summary("never") == {
        "count": 0, "total": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}


def test_value_histogram_and_bulk_record():
    reg = MetricsRegistry()
    reg.record_value("pointer.pts_set_size", 1)
    reg.record_values("pointer.pts_set_size", [2, 3, 10])
    snap = reg.snapshot()
    hist = snap["histograms"]["pointer.pts_set_size"]
    assert hist["count"] == 4
    assert hist["max"] == 10


def test_merge_counters_with_prefix():
    reg = MetricsRegistry()
    reg.inc("pointer.propagations", 10)
    reg.merge_counters({"propagations": 5, "edges": 2},
                       prefix="pointer.")
    assert reg.counter_value("pointer.propagations") == 15
    assert reg.counter_value("pointer.edges") == 2


def test_snapshot_is_sorted_and_json_shaped():
    import json
    reg = MetricsRegistry()
    reg.inc("b.count")
    reg.inc("a.count")
    reg.gauge("g", 1.5)
    reg.record_time("t", 0.25)
    snap = reg.snapshot()
    assert set(snap) == {"counters", "gauges", "timers", "histograms"}
    assert list(snap["counters"]) == ["a.count", "b.count"]
    json.dumps(snap)  # must be serializable as-is


def test_histogram_summary_unsorted_input():
    h = Histogram()
    for v in (9.0, 1.0, 5.0):
        h.observe(v)
    s = h.summary()
    assert s["p50"] == 5.0 and s["max"] == 9.0


def test_null_registry_is_inert():
    NULL_REGISTRY.inc("x", 5)
    NULL_REGISTRY.gauge("g", 1)
    NULL_REGISTRY.gauge_max("g", 2)
    NULL_REGISTRY.record_time("t", 0.1)
    NULL_REGISTRY.record_value("h", 1)
    NULL_REGISTRY.record_values("h", [1, 2])
    NULL_REGISTRY.merge_counters({"a": 1})
    assert NULL_REGISTRY.counter_value("x") == 0
    assert NULL_REGISTRY.gauge_value("g") is None
    assert NULL_REGISTRY.timer_summary("t")["count"] == 0
    assert NULL_REGISTRY.snapshot() == {}
    assert not NULL_REGISTRY.enabled


def test_merge_counters_sum_and_gauges_keep_max():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.inc("taint.flows", 3)
    b.inc("taint.flows", 4)
    b.inc("taint.rules", 1)
    a.gauge("taint.state_units", 10)
    b.gauge("taint.state_units", 7)
    b.gauge("taint.parallel_jobs", 4)
    a.merge(b)
    assert a.counter_value("taint.flows") == 7
    assert a.counter_value("taint.rules") == 1
    assert a.gauge_value("taint.state_units") == 10
    assert a.gauge_value("taint.parallel_jobs") == 4


def test_merge_concatenates_histogram_observations():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.record_time("taint.rule_seconds", 1.0)
    b.record_time("taint.rule_seconds", 3.0)
    b.record_value("taint.rule_flows", 5)
    a.merge(b)
    timer = a.timer_summary("taint.rule_seconds")
    assert timer["count"] == 2
    assert timer["total"] == 4.0
    assert timer["max"] == 3.0
    hist = a.snapshot()["histograms"]["taint.rule_flows"]
    assert hist["count"] == 1 and hist["total"] == 5
    # The donor registry is untouched.
    assert b.timer_summary("taint.rule_seconds")["count"] == 1


def test_merge_of_pooled_workers_matches_single_registry():
    """Merging per-worker registries must equal recording everything
    into one registry (the serial/parallel metric-parity contract)."""
    whole = MetricsRegistry()
    workers = [MetricsRegistry() for _ in range(3)]
    for i, reg in enumerate(workers):
        for target in (whole, reg):
            target.inc("taint.worker_rules")
            target.record_time("taint.rule_seconds", 0.5 * (i + 1))
            target.record_value("taint.rule_flows", i)
            target.gauge_max("taint.state_units", 10 * i)
    merged = MetricsRegistry()
    for reg in workers:
        merged.merge(reg)
    assert merged.snapshot() == whole.snapshot()


def test_merge_ignores_null_registry():
    reg = MetricsRegistry()
    reg.inc("x", 1)
    reg.merge(NULL_REGISTRY)
    assert reg.counter_value("x") == 1
    # And the null registry absorbs nothing, silently.
    NULL_REGISTRY.merge(reg)
    assert NULL_REGISTRY.snapshot() == {}


# -- merge / percentile edge cases --------------------------------------------

def test_merge_of_two_empty_registries_stays_empty():
    a = MetricsRegistry()
    a.merge(MetricsRegistry())
    assert a.snapshot() == {"counters": {}, "gauges": {}, "timers": {},
                            "histograms": {}}


def test_merge_empty_histogram_creates_empty_summary():
    """A donor that touched a timer name without observations still
    registers the name — with a zeroed summary, not a crash."""
    a = MetricsRegistry()
    b = MetricsRegistry()
    b._timers["t.empty"] = Histogram()
    b._histograms["h.empty"] = Histogram()
    a.merge(b)
    snap = a.snapshot()
    assert snap["timers"]["t.empty"]["count"] == 0
    assert snap["histograms"]["h.empty"]["count"] == 0


def test_merge_single_sample_summaries():
    a = MetricsRegistry()
    b = MetricsRegistry()
    b.record_time("t", 0.5)
    a.merge(b)
    summary = a.timer_summary("t")
    assert summary == {"count": 1, "total": 0.5, "p50": 0.5,
                       "p95": 0.5, "max": 0.5}


def test_merge_disjoint_name_sets_unions():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.inc("only.a", 1)
    a.record_value("hist.a", 2)
    b.inc("only.b", 3)
    b.record_value("hist.b", 4)
    a.merge(b)
    snap = a.snapshot()
    assert set(snap["counters"]) == {"only.a", "only.b"}
    assert set(snap["histograms"]) == {"hist.a", "hist.b"}
    assert a.counter_value("only.b") == 3


def test_merge_overlapping_names_pool_per_family_semantics():
    a = MetricsRegistry()
    b = MetricsRegistry()
    for reg, value in ((a, 2.0), (b, 6.0)):
        reg.inc("shared.count", value)
        reg.gauge_max("shared.peak", value)
        reg.record_value("shared.sizes", value)
    a.merge(b)
    assert a.counter_value("shared.count") == 8.0       # summed
    assert a.gauge_value("shared.peak") == 6.0          # max kept
    hist = a.snapshot()["histograms"]["shared.sizes"]
    assert hist["count"] == 2 and hist["total"] == 8.0  # pooled


def test_merge_gauge_max_with_negative_values():
    """gauge_max under merge keeps the arithmetic maximum even when all
    observations are negative (e.g. a headroom-remaining gauge)."""
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.gauge_max("budget.headroom", -10)
    b.gauge_max("budget.headroom", -3)
    b.gauge_max("only.b", -7)
    a.merge(b)
    assert a.gauge_value("budget.headroom") == -3
    assert a.gauge_value("only.b") == -7
    # Merging the smaller value back does not regress the maximum.
    b2 = MetricsRegistry()
    b2.gauge_max("budget.headroom", -10)
    a.merge(b2)
    assert a.gauge_value("budget.headroom") == -3


def test_merge_is_associative_across_workers():
    def worker(seed):
        reg = MetricsRegistry()
        reg.inc("c", seed)
        reg.record_value("h", seed)
        return reg

    left = MetricsRegistry()
    for reg in (worker(1), worker(2), worker(3)):
        left.merge(reg)
    mid = worker(2)
    mid.merge(worker(3))
    right = worker(1)
    right.merge(mid)
    assert left.snapshot() == right.snapshot()


def test_percentile_clamps_out_of_range_quantiles():
    data = [1.0, 2.0, 3.0]
    assert percentile(data, -5.0) == 1.0
    assert percentile(data, 0.0) == 1.0
    assert percentile(data, 100.0) == 3.0
    assert percentile(data, 250.0) == 3.0


def test_percentile_small_inputs():
    assert percentile([4.0], 1.0) == 4.0
    assert percentile([4.0], 99.0) == 4.0
    two = [1.0, 9.0]
    assert percentile(two, 50.0) == 1.0   # nearest-rank: ceil(1.0) = 1
    assert percentile(two, 50.1) == 9.0
    assert percentile(two, 95.0) == 9.0

"""Sampling profiler: data model, backends, phase attribution, and the
pipeline-level contracts (no-report-drift, serial/parallel merge)."""

import time

import pytest

from repro.bench.securibench import CASES
from repro.core import TAJ, TAJConfig
from repro.obs import Observability
from repro.obs.profile import (DEFAULT_PHASE, HOT_LOOPS, ProfileData,
                               SamplingProfiler, profile_shard,
                               write_collapsed)
from repro.obs.tracer import Tracer
from repro.reporting import render_text


def _burn_cpu(seconds: float) -> int:
    """Busy loop measured in CPU time (what ITIMER_PROF advances on)."""
    deadline = time.process_time() + seconds
    x = 0
    while time.process_time() < deadline:
        x += 1
    return x


# -- ProfileData --------------------------------------------------------------

def test_profile_data_accumulates_and_reads():
    data = ProfileData(interval=0.01)
    data.add("taint", ("engine.run", "hybrid.slice_rule"), count=3)
    data.add("taint", ("engine.run",), count=1)
    data.add("pointer_analysis", ("solver.solve",), count=2)
    assert data.samples == 6
    assert data.phase_self_seconds() == {"pointer_analysis": 0.02,
                                         "taint": 0.04}
    # Leaf attribution: slice_rule is the on-CPU frame for 3 samples.
    assert data.function_self_seconds()["hybrid.slice_rule"] == 0.03
    assert data.hot_loop_seconds() == {"taint.slice_rule": 0.03}


def test_profile_data_merge_rescales_to_conserve_seconds():
    coarse = ProfileData(interval=0.01)
    coarse.add("taint", ("f",), count=10)          # 0.1 s
    fine = ProfileData(interval=0.005)
    fine.add("taint", ("f",), count=20)            # 0.1 s
    coarse.merge(fine)
    assert coarse.phase_self_seconds()["taint"] == pytest.approx(0.2)
    # Merging an empty donor is a no-op.
    coarse.merge(ProfileData(interval=0.001))
    assert coarse.phase_self_seconds()["taint"] == pytest.approx(0.2)


def test_collapsed_lines_format_and_write(tmp_path):
    data = ProfileData(interval=0.01)
    data.add("taint", ("engine.run", "hybrid.slice_rule"), count=3)
    data.add("modeling", (), count=1)
    lines = data.collapsed_lines()
    assert lines == ["modeling 1",
                     "taint;engine.run;hybrid.slice_rule 3"]
    path = tmp_path / "profile.collapsed"
    assert write_collapsed(data, str(path)) == 2
    assert path.read_text().splitlines() == lines


def test_payload_shape():
    data = ProfileData(interval=0.01)
    data.add("taint", ("engine.run",), count=2)
    payload = data.payload()
    assert set(payload) == {"interval_seconds", "samples",
                            "phase_self_seconds", "hot_loop_seconds",
                            "top_functions"}
    assert payload["samples"] == 2
    assert payload["top_functions"] == {"engine.run": 0.02}


def test_hot_loop_markers_cover_solver_and_tabulation():
    assert HOT_LOOPS["_solve_constraints"].startswith("pointer.")
    assert HOT_LOOPS["tabulate"] == "sdg.tabulation"
    assert HOT_LOOPS["slice_rule"] == "taint.slice_rule"


# -- SamplingProfiler ---------------------------------------------------------

@pytest.mark.parametrize("backend", ["signal", "thread"])
def test_profiler_samples_busy_loop(backend):
    profiler = SamplingProfiler(interval=0.002, backend=backend)
    profiler.start()
    try:
        _burn_cpu(0.08)
    finally:
        data = profiler.stop()
    assert not profiler.running
    assert data.samples > 0
    # Without a tracer every sample lands under the fixed phase.
    assert set(data.phase_self_seconds()) == {DEFAULT_PHASE}
    leaves = "".join(data.function_self_seconds())
    assert "_burn_cpu" in leaves


def test_profiler_phase_attribution_follows_tracer_spans():
    tracer = Tracer()
    profiler = SamplingProfiler(interval=0.002, tracer=tracer,
                                backend="signal")
    profiler.start()
    try:
        with tracer.span("phase.pointer_analysis"):
            _burn_cpu(0.05)
        with tracer.span("phase.taint"):
            with tracer.span("taint.rule"):   # nested: root names phase
                _burn_cpu(0.05)
    finally:
        data = profiler.stop()
    phases = data.phase_self_seconds()
    assert set(phases) <= {"pointer_analysis", "taint", DEFAULT_PHASE}
    assert phases.get("pointer_analysis", 0.0) > 0.0
    assert phases.get("taint", 0.0) > 0.0


def test_profiler_pause_suppresses_samples():
    profiler = SamplingProfiler(interval=0.002, backend="signal")
    profiler.start()
    try:
        profiler.pause()
        _burn_cpu(0.05)
        paused_samples = profiler.data.samples
        profiler.resume()
        _burn_cpu(0.05)
    finally:
        profiler.stop()
    assert paused_samples == 0
    assert profiler.data.samples > 0


def test_profiler_context_manager_and_absorb():
    with SamplingProfiler(interval=0.002, backend="thread") as profiler:
        time.sleep(0.02)
    donor = ProfileData(interval=0.002)
    donor.add("taint", ("f",), count=4)
    profiler.absorb(donor)
    profiler.absorb(None)   # worker without profiling ships None
    assert profiler.data.phase_self_seconds()["taint"] == \
        pytest.approx(0.008)


def test_profiler_rejects_bad_arguments():
    with pytest.raises(ValueError):
        SamplingProfiler(interval=0.0)
    with pytest.raises(ValueError):
        SamplingProfiler(backend="perf")


def test_profile_shard_helper():
    assert profile_shard(None) is None
    profiler = profile_shard(0.002)
    try:
        assert profiler.running
        assert profiler.fixed_phase == "taint"
        assert profiler.tracer is None
    finally:
        profiler.stop()


# -- pipeline contracts -------------------------------------------------------

def _corpus(count: int):
    return [src for group in CASES.values()
            for src, _truth in group.values()][:count]


def _render(result):
    return render_text(result.report, title="t")


def test_profiling_and_progress_do_not_change_the_report():
    """The differential contract: measurement must never move the
    analysis — byte-identical reports with everything off vs on."""
    sources = _corpus(6)
    plain = TAJ(TAJConfig.hybrid_optimized()).analyze_sources(sources)
    obs = Observability(profile=True, progress=True)
    measured = TAJ(TAJConfig.hybrid_optimized().with_profile(),
                   obs=obs).analyze_sources(sources)
    assert _render(plain) == _render(measured)
    assert [f.sort_key() for f in plain.flows] == \
        [f.sort_key() for f in measured.flows]
    assert plain.profile is None
    assert measured.profile is not None


def test_config_profile_knob_installs_profiler_on_enabled_bundle():
    obs = Observability()
    result = TAJ(TAJConfig.hybrid_optimized().with_profile(
        interval=0.002), obs=obs).analyze_sources(_corpus(3))
    assert obs.profiler is not None
    assert not obs.profiler.running        # stopped by _finalize
    assert result.profile is not None
    assert result.profile["interval_seconds"] == 0.002
    # Disabled bundle: the knob is ignored (no measurement channel).
    result = TAJ(TAJConfig.hybrid_optimized().with_profile(),
                 obs=Observability.disabled()) \
        .analyze_sources(_corpus(3))
    assert result.profile is None


@pytest.mark.parametrize("jobs", [1, 2])
def test_phase_self_time_stays_within_span_durations(jobs):
    """Acceptance: phase self-time totals (serial and merged parallel)
    stay within the span-reported phase durations, up to sampling
    granularity."""
    config = TAJConfig.hybrid_optimized().with_profile(interval=0.001)
    if jobs > 1:
        config = config.with_jobs(jobs)
    obs = Observability()
    result = TAJ(config, obs=obs).analyze_sources(_corpus(10))
    assert result.profile is not None
    spans = {
        "modeling": result.times.modeling,
        "pointer_analysis": result.times.pointer_analysis,
        "sdg": result.times.sdg,
        "taint": result.times.taint,
        "reporting": result.times.reporting,
        "confirm": result.times.confirm,
    }
    # Sampling granularity slack: a few intervals per phase (signal
    # backend samples CPU time, which never exceeds wall; on a 1-core
    # host merged worker CPU is bounded by the taint wall too).
    slack = 0.001 * 10
    for phase, seconds in result.profile["phase_self_seconds"].items():
        assert phase in spans, f"unknown profiled phase {phase!r}"
        assert seconds <= spans[phase] + slack, \
            f"{phase}: self-time {seconds} exceeds span {spans[phase]}"


def test_parallel_run_merges_worker_shard_profiles():
    """jobs=2 must still produce one whole-pipeline profile whose taint
    samples come from the pool workers (the parent pauses)."""
    config = TAJConfig.hybrid_optimized() \
        .with_profile(interval=0.001).with_jobs(2)
    obs = Observability()
    result = TAJ(config, obs=obs).analyze_sources(_corpus(10))
    lines = obs.profiler.data.collapsed_lines()
    assert any(line.startswith("taint;") for line in lines), \
        "no worker-shipped taint samples in the merged profile"
    assert result.profile["samples"] == obs.profiler.data.samples

"""Exporters: Chrome trace-event schema, JSONL spans, JSON writers."""

import json

from repro.obs import (Tracer, chrome_trace_events, span_dicts,
                       write_chrome_trace, write_metrics_json,
                       write_spans_jsonl)


def _sample_tracer():
    tracer = Tracer()
    with tracer.span("phase.pointer_analysis", cg_nodes=6) as span:
        tracer.add_completed("pointer.constraint_adding", span.start,
                             0.001)
    with tracer.span("phase.taint"):
        pass
    return tracer


def test_chrome_trace_event_schema():
    events = chrome_trace_events(_sample_tracer())
    assert len(events) == 3
    for event in events:
        assert set(event) == {"name", "cat", "ph", "ts", "dur", "pid",
                              "tid", "args"}
        assert event["ph"] == "X"
        assert event["cat"] == "taj"
        assert isinstance(event["ts"], float)
        assert isinstance(event["dur"], float)
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0
    # Timestamps are rebased: the earliest span starts at t=0.
    assert min(e["ts"] for e in events) == 0.0


def test_chrome_trace_args_are_json_primitives():
    tracer = Tracer()
    with tracer.span("phase.sdg", call_sites=5, obj=object()):
        pass
    (event,) = chrome_trace_events(tracer)
    assert event["args"]["call_sites"] == 5
    assert isinstance(event["args"]["obj"], str)
    json.dumps(event)


def test_chrome_trace_empty_tracer():
    assert chrome_trace_events(Tracer()) == []


def test_write_chrome_trace_file(tmp_path):
    path = tmp_path / "trace.json"
    count = write_chrome_trace(_sample_tracer(), str(path),
                               metadata={"config": "hybrid-optimized"})
    payload = json.loads(path.read_text())
    assert count == 3
    assert payload["displayTimeUnit"] == "ms"
    assert payload["otherData"] == {"config": "hybrid-optimized"}
    assert [e["name"] for e in payload["traceEvents"]] == [
        "phase.pointer_analysis", "pointer.constraint_adding",
        "phase.taint"]


def test_span_dicts_depth_and_parent():
    rows = span_dicts(_sample_tracer())
    assert [(r["name"], r["depth"], r["parent"]) for r in rows] == [
        ("phase.pointer_analysis", 0, None),
        ("pointer.constraint_adding", 1, "phase.pointer_analysis"),
        ("phase.taint", 0, None)]
    for row in rows:
        assert row["end_s"] >= row["start_s"]
        assert row["duration_s"] >= 0.0


def test_write_spans_jsonl(tmp_path):
    path = tmp_path / "spans.jsonl"
    count = write_spans_jsonl(_sample_tracer(), str(path))
    lines = path.read_text().splitlines()
    assert count == len(lines) == 3
    first = json.loads(lines[0])
    assert first["name"] == "phase.pointer_analysis"
    assert first["attrs"] == {"cg_nodes": 6}


def test_write_metrics_json_round_trip(tmp_path):
    path = tmp_path / "metrics.json"
    snapshot = {"counters": {"a": 1}, "gauges": {},
                "timers": {}, "histograms": {}}
    write_metrics_json(snapshot, str(path))
    assert json.loads(path.read_text()) == snapshot

"""Exporters: Chrome trace-event schema, JSONL spans, JSON writers."""

import json

import pytest

from repro.obs import (Tracer, chrome_trace_events, span_dicts,
                       write_chrome_trace, write_metrics_json,
                       write_spans_jsonl)


def _sample_tracer():
    tracer = Tracer()
    with tracer.span("phase.pointer_analysis", cg_nodes=6) as span:
        tracer.add_completed("pointer.constraint_adding", span.start,
                             0.001)
    with tracer.span("phase.taint"):
        pass
    return tracer


def test_chrome_trace_event_schema():
    events = chrome_trace_events(_sample_tracer())
    assert len(events) == 3
    for event in events:
        assert set(event) == {"name", "cat", "ph", "ts", "dur", "pid",
                              "tid", "args"}
        assert event["ph"] == "X"
        assert event["cat"] == "taj"
        assert isinstance(event["ts"], float)
        assert isinstance(event["dur"], float)
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0
    # Timestamps are rebased: the earliest span starts at t=0.
    assert min(e["ts"] for e in events) == 0.0


def test_chrome_trace_args_are_json_primitives():
    tracer = Tracer()
    with tracer.span("phase.sdg", call_sites=5, obj=object()):
        pass
    (event,) = chrome_trace_events(tracer)
    assert event["args"]["call_sites"] == 5
    assert isinstance(event["args"]["obj"], str)
    json.dumps(event)


def test_chrome_trace_empty_tracer():
    assert chrome_trace_events(Tracer()) == []


def test_write_chrome_trace_file(tmp_path):
    path = tmp_path / "trace.json"
    count = write_chrome_trace(_sample_tracer(), str(path),
                               metadata={"config": "hybrid-optimized"})
    payload = json.loads(path.read_text())
    assert count == 3
    assert payload["displayTimeUnit"] == "ms"
    assert payload["otherData"] == {"config": "hybrid-optimized"}
    assert [e["name"] for e in payload["traceEvents"]] == [
        "phase.pointer_analysis", "pointer.constraint_adding",
        "phase.taint"]


def test_span_dicts_depth_and_parent():
    rows = span_dicts(_sample_tracer())
    assert [(r["name"], r["depth"], r["parent"]) for r in rows] == [
        ("phase.pointer_analysis", 0, None),
        ("pointer.constraint_adding", 1, "phase.pointer_analysis"),
        ("phase.taint", 0, None)]
    for row in rows:
        assert row["end_s"] >= row["start_s"]
        assert row["duration_s"] >= 0.0


def test_write_spans_jsonl(tmp_path):
    path = tmp_path / "spans.jsonl"
    count = write_spans_jsonl(_sample_tracer(), str(path))
    lines = path.read_text().splitlines()
    assert count == len(lines) == 3
    first = json.loads(lines[0])
    assert first["name"] == "phase.pointer_analysis"
    assert first["attrs"] == {"cg_nodes": 6}


def test_write_metrics_json_round_trip(tmp_path):
    path = tmp_path / "metrics.json"
    snapshot = {"counters": {"a": 1}, "gauges": {},
                "timers": {}, "histograms": {}}
    write_metrics_json(snapshot, str(path))
    assert json.loads(path.read_text()) == snapshot


# -- edge cases ---------------------------------------------------------------

def test_empty_tracer_writes_valid_files(tmp_path):
    """A run that dies before its first span still exports cleanly."""
    tracer = Tracer()
    assert span_dicts(tracer) == []
    jsonl = tmp_path / "spans.jsonl"
    assert write_spans_jsonl(tracer, str(jsonl)) == 0
    assert jsonl.read_text() == ""
    trace = tmp_path / "trace.json"
    assert write_chrome_trace(tracer, str(trace)) == 0
    payload = json.loads(trace.read_text())
    assert payload["traceEvents"] == []


def _abandoned_tracer():
    """A tracer whose outer span was never closed (aborted run)."""
    tracer = Tracer()
    outer = tracer.span("phase.taint", rule="XSS")
    outer.__enter__()
    with tracer.span("taint.rule"):
        pass
    return tracer


def test_unclosed_span_is_marked_incomplete(tmp_path):
    rows = span_dicts(_abandoned_tracer())
    outer, inner = rows
    assert outer["name"] == "phase.taint"
    assert outer["incomplete"] is True
    assert outer["duration_s"] >= 0.0
    # end_s is synthesized from the duration-so-far, never left stale.
    assert outer["end_s"] == pytest.approx(
        outer["start_s"] + outer["duration_s"])
    assert "incomplete" not in inner

    path = tmp_path / "spans.jsonl"
    write_spans_jsonl(_abandoned_tracer(), str(path))
    first = json.loads(path.read_text().splitlines()[0])
    assert first["incomplete"] is True


def test_unclosed_span_marks_chrome_event_args():
    events = chrome_trace_events(_abandoned_tracer())
    by_name = {e["name"]: e for e in events}
    assert by_name["phase.taint"]["args"]["incomplete"] is True
    assert by_name["phase.taint"]["dur"] >= 0.0
    assert "incomplete" not in by_name["taint.rule"]["args"]
    json.dumps(events)


def test_non_json_safe_attrs_survive_jsonl_export(tmp_path):
    tracer = Tracer()
    with tracer.span("phase.sdg", nodes=frozenset({1}), fn=len,
                     ok=True, none=None):
        pass
    path = tmp_path / "spans.jsonl"
    assert write_spans_jsonl(tracer, str(path)) == 1
    row = json.loads(path.read_text())
    assert row["attrs"]["ok"] is True
    assert row["attrs"]["none"] is None
    assert isinstance(row["attrs"]["nodes"], str)
    assert isinstance(row["attrs"]["fn"], str)

"""API parity: every Null* stand-in exposes exactly the public methods
of its real counterpart, so disabled-mode code paths can never hit an
``AttributeError`` that enabled-mode would not."""

import inspect

import pytest

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.progress import NullProgress, Progress
from repro.obs.provenance import NullProvenanceAudit, ProvenanceAudit
from repro.obs.tracer import (NullTracer, Span, Tracer, _NullSpan)

PAIRS = [
    (Tracer, NullTracer),
    (MetricsRegistry, NullMetricsRegistry),
    (ProvenanceAudit, NullProvenanceAudit),
    (Progress, NullProgress),
]


def _public_methods(cls):
    return {name for name, member in inspect.getmembers(cls)
            if callable(member) and not name.startswith("_")}


def _public_signature(cls, name):
    try:
        return inspect.signature(getattr(cls, name))
    except (TypeError, ValueError):  # pragma: no cover - C callables
        return None


@pytest.mark.parametrize("real,null", PAIRS,
                         ids=[real.__name__ for real, _ in PAIRS])
def test_null_counterpart_mirrors_public_methods(real, null):
    real_api = _public_methods(real)
    null_api = _public_methods(null)
    assert null_api == real_api, (
        f"{null.__name__} diverges from {real.__name__}: "
        f"missing={sorted(real_api - null_api)}, "
        f"extra={sorted(null_api - real_api)}")


@pytest.mark.parametrize("real,null", PAIRS,
                         ids=[real.__name__ for real, _ in PAIRS])
def test_null_counterpart_accepts_the_same_arguments(real, null):
    """Same parameter names per method (self-bound signatures), so any
    enabled-mode call site compiles against the null object too."""
    for name in _public_methods(real):
        real_sig = _public_signature(real, name)
        null_sig = _public_signature(null, name)
        if real_sig is None or null_sig is None:
            continue
        assert list(null_sig.parameters) == list(real_sig.parameters), \
            f"{null.__name__}.{name}{null_sig} != " \
            f"{real.__name__}.{name}{real_sig}"


@pytest.mark.parametrize("real,null", PAIRS,
                         ids=[real.__name__ for real, _ in PAIRS])
def test_enabled_flag_discriminates(real, null):
    assert real.enabled is True
    assert null.enabled is False


def test_null_span_mirrors_span_surface():
    """Spans pair structurally: every public attr/method of Span exists
    on the shared null span (slots-based, so compare the declared
    surface, not instance dicts)."""
    span_api = {name for name in Span.__slots__
                if not name.startswith("_")}
    span_api |= _public_methods(Span) | {"duration"}
    for name in span_api:
        assert hasattr(_NullSpan, name), f"_NullSpan missing {name!r}"
    # And both work as context managers returning themselves.
    null_span = _NullSpan()
    with null_span as inner:
        assert inner is null_span
    assert null_span.set(x=1) is null_span

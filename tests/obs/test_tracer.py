"""Span tracer: nesting, attributes, disabled mode."""

import pytest

from repro.obs import NULL_TRACER, Tracer
from repro.obs.tracer import NULL_SPAN


def test_nested_spans_form_a_tree():
    tracer = Tracer()
    with tracer.span("phase.outer"):
        with tracer.span("inner.a"):
            pass
        with tracer.span("inner.b"):
            with tracer.span("inner.b.leaf"):
                pass
    assert len(tracer.roots) == 1
    outer = tracer.roots[0]
    assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
    assert outer.children[1].children[0].name == "inner.b.leaf"
    assert outer.children[1].children[0].parent is outer.children[1]


def test_pre_order_iteration_with_depths():
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    with tracer.span("c"):
        pass
    walk = [(span.name, depth) for span, depth in tracer.iter_spans()]
    assert walk == [("a", 0), ("b", 1), ("c", 0)]


def test_attributes_at_open_and_via_set():
    tracer = Tracer()
    with tracer.span("phase.pointer_analysis", budget=100) as span:
        span.set(cg_nodes=7, truncated=False)
    assert span.attrs == {"budget": 100, "cg_nodes": 7,
                          "truncated": False}


def test_durations_are_monotonic_and_contained():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    outer, inner = tracer.roots[0], tracer.roots[0].children[0]
    assert outer.end is not None and inner.end is not None
    assert outer.start <= inner.start <= inner.end <= outer.end
    assert outer.duration >= inner.duration >= 0.0


def test_exception_closes_span_and_records_error():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("phase.taint"):
            raise ValueError("budget exhausted")
    span = tracer.roots[0]
    assert span.end is not None
    assert "budget exhausted" in span.attrs["error"]
    assert tracer.current() is None


def test_exception_unwinding_closes_intermediate_spans():
    tracer = Tracer()
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    outer.__enter__()
    inner.__enter__()
    # Simulate the outer handler exiting while inner is still open.
    outer.__exit__(None, None, None)
    assert inner.end is not None
    assert tracer.current() is None


def test_add_completed_attaches_under_current_span():
    tracer = Tracer()
    with tracer.span("phase.pointer_analysis"):
        tracer.add_completed("pointer.constraint_adding", 10.0, 0.5,
                             {"rounds": 3})
        tracer.add_completed("pointer.constraint_solving", 10.5, 1.5)
    root = tracer.roots[0]
    names = [c.name for c in root.children]
    assert names == ["pointer.constraint_adding",
                     "pointer.constraint_solving"]
    adding = root.children[0]
    assert adding.start == 10.0 and adding.end == 10.5
    assert adding.attrs == {"rounds": 3}
    assert root.children[1].duration == pytest.approx(1.5)


def test_find_and_phase_durations():
    tracer = Tracer()
    with tracer.span("phase.modeling"):
        with tracer.span("modeling.ssa"):
            pass
    with tracer.span("phase.taint"):
        pass
    assert [s.name for s in tracer.find("modeling.ssa")] \
        == ["modeling.ssa"]
    durations = tracer.phase_durations()
    assert set(durations) == {"modeling", "taint"}
    assert all(v >= 0.0 for v in durations.values())


def test_null_tracer_records_nothing():
    span = NULL_TRACER.span("phase.modeling", files=2)
    assert span is NULL_SPAN
    with span as s:
        s.set(anything=1)
    assert NULL_TRACER.roots == ()
    assert list(NULL_TRACER.iter_spans()) == []
    assert NULL_TRACER.find("phase.modeling") == []
    assert NULL_TRACER.phase_durations() == {}
    assert not NULL_TRACER.enabled


def test_null_span_is_shared_and_stateless():
    a = NULL_TRACER.span("a", x=1)
    b = NULL_TRACER.span("b")
    assert a is b
    a.set(y=2)
    assert NULL_SPAN.attrs == {}

"""Verdict records: canonical ordering, counts, serialization."""

import pytest

from repro.confirm import (CONFIRMED, INCONCLUSIVE, REFUTED,
                           ConfirmationResult, FlowVerdict,
                           canonical_verdicts)


def _verdict(rule="XSS", source="A.m/1@1", sink="A.m/1@9",
             verdict=CONFIRMED, reason="tainted-witness", labels=()):
    return FlowVerdict(rule=rule, source=source, sink=sink,
                       sink_display="PrintWriter.println",
                       verdict=verdict, reason=reason,
                       labels=tuple(labels))


def test_canonical_order_is_input_order_independent():
    verdicts = [
        _verdict(rule="SQLI", source="B.m/1@2"),
        _verdict(rule="XSS", source="A.m/1@7"),
        _verdict(rule="XSS", source="A.m/1@1"),
    ]
    fwd = canonical_verdicts(verdicts)
    bwd = canonical_verdicts(list(reversed(verdicts)))
    assert fwd == bwd
    keys = [v.sort_key() for v in fwd]
    assert keys == sorted(keys)


def test_canonical_dedupes_by_flow_identity():
    out = canonical_verdicts([_verdict(), _verdict(reason="dup")])
    assert len(out) == 1


def test_counts_and_partitions():
    result = ConfirmationResult(verdicts=[
        _verdict(source="A.m/1@1"),
        _verdict(source="A.m/1@2", verdict=REFUTED, reason="sanitized"),
        _verdict(source="A.m/1@3", verdict=INCONCLUSIVE,
                 reason="sink-not-reached"),
        _verdict(source="A.m/1@4"),
    ])
    assert result.counts() == {"confirmed": 2, "refuted": 1,
                               "inconclusive": 1}
    assert len(result.confirmed) == 2
    assert len(result.refuted) == 1
    assert len(result.inconclusive) == 1


def test_verdict_for_lookup():
    verdict = _verdict()
    result = ConfirmationResult(verdicts=[verdict])
    assert result.verdict_for("XSS", "A.m/1@1", "A.m/1@9") is verdict
    with pytest.raises(KeyError):
        result.verdict_for("XSS", "A.m/1@1", "A.m/1@99")


def test_payload_is_json_ready():
    import json
    result = ConfirmationResult(
        verdicts=[_verdict(labels=("src:A.m/1@1",))],
        seed=1, replays=2, replay_steps=42,
        instrumented_sources=1, instrumented_sinks=1)
    payload = result.to_payload()
    text = json.dumps(payload)
    assert "tainted-witness" in text
    assert payload["counts"]["confirmed"] == 1
    assert payload["verdicts"][0]["labels"] == ["src:A.m/1@1"]

"""Partial-instrumentation plans: witness-method extraction, canonical
probe order, deduplication."""

from repro.confirm import FlowProbe, InstrumentationPlan, build_plan
from repro.sdg.nodes import StmtRef
from repro.taint.flows import TaintFlow


def _flow(rule="XSS", src=("A.doGet/2", 1), snk=("A.doGet/2", 9),
          display="PrintWriter.println", lcp=("A.doGet/2", 9),
          length=3, carrier=False):
    return TaintFlow(rule=rule, source=StmtRef(*src), sink=StmtRef(*snk),
                     sink_display=display, lcp=StmtRef(*lcp),
                     length=length, via_carrier=carrier)


def test_probe_carries_witness_chain_methods():
    flow = _flow(src=("A.read/2", 1), snk=("B.write/2", 9),
                 lcp=("C.emit/1", 4))
    probe = FlowProbe.from_flow(flow)
    assert probe.source_method == "A.read/2"
    assert probe.sink_method == "B.write/2"
    assert probe.lcp_method == "C.emit/1"
    assert probe.witness_methods == {"A.read/2", "B.write/2", "C.emit/1"}


def test_plan_unions_instrumented_methods():
    plan = build_plan([
        _flow(src=("A.a/1", 1), snk=("A.b/1", 2), lcp=("A.b/1", 2)),
        _flow(rule="SQLI", src=("A.a/1", 3), snk=("A.c/1", 4),
              lcp=("A.c/1", 4), display="Statement.executeQuery"),
    ])
    assert plan.source_methods == frozenset({"A.a/1"})
    assert plan.sink_methods == frozenset({"A.b/1", "A.c/1"})
    assert plan.instrumented_methods == frozenset(
        {"A.a/1", "A.b/1", "A.c/1"})
    assert len(plan) == 2


def test_plan_dedupes_by_flow_identity():
    # Same (rule, source, sink) twice — e.g. once direct, once via
    # carrier — yields one probe.
    flows = [_flow(carrier=False), _flow(carrier=True)]
    plan = build_plan(flows)
    assert len(plan.probes) == 1


def test_plan_order_is_independent_of_flow_order():
    flows = [
        _flow(rule="XSS", src=("B.m/1", 1), snk=("B.m/1", 5)),
        _flow(rule="SQLI", src=("A.m/1", 2), snk=("A.m/1", 6),
              display="Statement.executeQuery"),
        _flow(rule="XSS", src=("A.m/1", 1), snk=("A.m/1", 5)),
    ]
    forward = build_plan(flows)
    backward = build_plan(list(reversed(flows)))
    assert forward == backward
    keys = [p.sort_key() for p in forward.probes]
    assert keys == sorted(keys)


def test_empty_plan():
    plan = build_plan([])
    assert plan.probes == ()
    assert plan.source_methods == frozenset()
    assert isinstance(plan, InstrumentationPlan)

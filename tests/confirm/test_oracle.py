"""The replay oracle's verdict semantics, end to end.

Covers every verdict/reason pair the oracle can produce, plus the
pipeline integration (``TAJConfig.with_confirm`` → ``phase.confirm``
span → ``TAJResult.confirmation`` → metrics counters) and the CLI
``--confirm`` surface.
"""

import json

import pytest

from repro import TAJ, TAJConfig
from repro.bench.generator import AppSpec, generate_app
from repro.bench.micro import MOTIVATING
from repro.bench.securibench import CASES
from repro.cli import main
from repro.confirm import (CONFIRMED, INCONCLUSIVE, REFUTED,
                           ReplayOracle, build_plan, confirm_result)
from repro.sdg.nodes import StmtRef
from repro.taint.flows import TaintFlow

APP = """
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("p"));
  }
  void helper(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("q"));
  }
}
"""


def analyze_and_confirm(sources, config=None, descriptor=None, **kw):
    config = config or TAJConfig.cs()
    result = TAJ(config).analyze_sources(
        sources, deployment_descriptor=descriptor)
    return result, confirm_result(result, sources, descriptor, **kw)


# -- confirmed -----------------------------------------------------------------

def test_motivating_flow_is_confirmed():
    result, conf = analyze_and_confirm([MOTIVATING])
    assert len(result.flows) == 1
    assert conf.counts() == {"confirmed": 1, "refuted": 0,
                             "inconclusive": 0}
    verdict = conf.verdicts[0]
    assert verdict.verdict == CONFIRMED
    assert verdict.reason == "tainted-witness"
    assert verdict.labels, "the witnessing labels are recorded"
    assert all("san=" not in label for label in verdict.labels)


def test_confirmed_labels_carry_the_replay_seed():
    _, conf = analyze_and_confirm([MOTIVATING], seed=42)
    assert conf.seed == 42
    # The seeded payload shows up in the witnessing label's origin run
    # (labels name the source site; the seed fixes the payload text, so
    # two seeds yield the same labels — determinism is over verdicts).
    _, again = analyze_and_confirm([MOTIVATING], seed=42)
    assert [v.to_dict() for v in conf.verdicts] == \
        [v.to_dict() for v in again.verdicts]


def test_info_leak_confirms_via_fault_mode():
    """INFO_LEAK flows live in catch blocks: only the fault-injection
    replay reaches them, and the verdict records that."""
    app = generate_app(AppSpec(
        name="leak", seed=3, tp_direct=0, tp_string=0, tp_map=0,
        tp_heap=0, tp_helper=0, tp_carrier=0, tp_sql=0, tp_leak=1,
        sanitized=0, trap_context=0, trap_factory=0, trap_xentry=0,
        trap_logger=0, cold_classes=0, lib_classes=0))
    result, conf = analyze_and_confirm(app.sources)
    leaks = [v for v in conf.verdicts if v.rule == "INFO_LEAK"]
    assert leaks and all(v.verdict == CONFIRMED for v in leaks)
    assert all(v.fault_replay for v in leaks)
    assert all(any(label.startswith("exc:") for label in v.labels)
               for v in leaks)


# -- refuted -------------------------------------------------------------------

@pytest.mark.parametrize("category,case", [
    ("arrays", "Arrays2_collapsed_indices"),
    ("collections", "Collections3_unknown_key"),
    ("datastructures", "Data4_field_overwrite_weak"),
])
def test_known_static_overapproximations_are_refuted(category, case):
    """The securibench cases documented as sound over-approximations
    (index-insensitive arrays, unknown map keys, weak field updates)
    are exactly the ones the replay refutes."""
    source, expected = CASES[category][case]
    result, conf = analyze_and_confirm([source])
    assert result.flows, "the static analysis reports these by design"
    assert all(v.verdict == REFUTED for v in conf.verdicts)
    assert all(v.reason == "no-tainted-witness" for v in conf.verdicts)


def test_decoy_patterns_are_refuted_as_sanitized():
    app = generate_app(AppSpec(
        name="dec", seed=5, decoy_field=1, decoy_static=1, decoy_sql=1,
        sanitized=0, trap_context=0, trap_factory=0, trap_xentry=0,
        trap_logger=0, cold_classes=0, lib_classes=0))
    result, conf = analyze_and_confirm(app.sources)
    decoy_methods = {p.sink_method for p in app.planted if p.is_decoy}
    decoy_verdicts = [v for v in conf.verdicts
                      if v.sink.split("@")[0] in decoy_methods]
    assert len(decoy_verdicts) >= 3, "all decoys statically reported"
    assert all(v.verdict == REFUTED and v.reason == "sanitized"
               for v in decoy_verdicts)
    assert all(any("san=" in label for label in v.labels)
               for v in decoy_verdicts)


# -- inconclusive --------------------------------------------------------------

def _fabricated_flow(source_method, sink_method,
                     display="PrintWriter.println", rule="XSS"):
    return TaintFlow(rule=rule, source=StmtRef(source_method, 1),
                     sink=StmtRef(sink_method, 2), sink_display=display,
                     lcp=StmtRef(sink_method, 2), length=1)


def test_nonexistent_sink_method_is_inconclusive():
    oracle = ReplayOracle()
    conf = oracle.confirm([_fabricated_flow("S.doGet/2", "Gone.m/1")],
                          [APP])
    assert conf.verdicts[0].verdict == INCONCLUSIVE
    assert conf.verdicts[0].reason == "sink-not-executable"


def test_nonexistent_source_method_is_inconclusive():
    oracle = ReplayOracle()
    conf = oracle.confirm([_fabricated_flow("Gone.m/1", "S.doGet/2")],
                          [APP])
    assert conf.verdicts[0].verdict == INCONCLUSIVE
    assert conf.verdicts[0].reason == "source-not-executable"


def test_unreached_method_is_inconclusive():
    # S.helper exists but no entrypoint schedule calls it.
    oracle = ReplayOracle()
    conf = oracle.confirm(
        [_fabricated_flow("S.helper/2", "S.helper/2")], [APP])
    assert conf.verdicts[0].verdict == INCONCLUSIVE
    assert conf.verdicts[0].reason == "source-not-reached"


def test_unknown_rule_is_inconclusive():
    oracle = ReplayOracle()
    conf = oracle.confirm(
        [_fabricated_flow("S.doGet/2", "S.doGet/2", rule="NOT_A_RULE")],
        [APP])
    assert conf.verdicts[0].verdict == INCONCLUSIVE
    assert conf.verdicts[0].reason == "unknown-rule"


def test_replay_budget_exhaustion_is_inconclusive():
    result, conf = analyze_and_confirm([MOTIVATING], fuel=3)
    assert conf.fuel_exhausted
    assert all(v.verdict == INCONCLUSIVE and
               v.reason == "replay-budget-exhausted"
               for v in conf.verdicts)


# -- partial instrumentation ---------------------------------------------------

def test_only_witness_chain_methods_are_instrumented():
    """Confirming one of two flows instruments only that flow's
    methods: the other sink stays silent in the replay."""
    two = APP + """
class T extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("t"));
  }
}
"""
    result = TAJ(TAJConfig.cs()).analyze_sources([two])
    doget = [f for f in result.flows if f.sink.method == "S.doGet/2"]
    assert doget and len(result.flows) == 2
    oracle = ReplayOracle()
    conf = oracle.confirm(doget, [two])
    assert conf.instrumented_sources == 1
    assert conf.instrumented_sinks == 1
    assert len(conf.verdicts) == 1
    assert conf.verdicts[0].verdict == CONFIRMED


def test_empty_flow_list_skips_replay():
    conf = ReplayOracle().confirm([], [APP])
    assert conf.replays == 0
    assert conf.verdicts == []


# -- pipeline + CLI integration ------------------------------------------------

def test_with_confirm_attaches_confirmation_to_result():
    config = TAJConfig.cs().with_confirm()
    result = TAJ(config).analyze_sources([MOTIVATING])
    assert result.confirmation is not None
    assert result.confirmation.counts()["confirmed"] == 1
    assert result.times.confirm > 0
    assert result.times.confirm <= result.times.total
    counters = result.metrics["counters"]
    assert counters["confirm.probes"] == 1
    assert counters["confirm.confirmed"] == 1


def test_without_confirm_no_confirmation():
    result = TAJ(TAJConfig.cs()).analyze_sources([MOTIVATING])
    assert result.confirmation is None
    assert result.times.confirm == 0.0


def test_cli_confirm_text_output(tmp_path, capsys):
    path = tmp_path / "app.jlang"
    path.write_text(MOTIVATING)
    code = main(["--config", "cs", "--confirm", str(path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "dynamic confirmation" in out
    assert "1 confirmed" in out
    assert "tainted-witness" in out


def test_cli_confirm_json_output(tmp_path, capsys):
    path = tmp_path / "app.jlang"
    path.write_text(MOTIVATING)
    main(["--config", "cs", "--confirm", "--json", str(path)])
    payload = json.loads(capsys.readouterr().out)
    conf = payload["confirmation"]
    assert conf["counts"] == {"confirmed": 1, "refuted": 0,
                              "inconclusive": 0}
    assert conf["verdicts"][0]["verdict"] == "confirmed"
    assert conf["replays"] == 2


def test_cli_without_confirm_has_no_confirmation_key(tmp_path, capsys):
    path = tmp_path / "app.jlang"
    path.write_text(MOTIVATING)
    main(["--json", str(path)])
    payload = json.loads(capsys.readouterr().out)
    assert "confirmation" not in payload

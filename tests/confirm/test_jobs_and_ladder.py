"""Confirmation composed with parallelism and the degradation ladder.

The verdict list must be byte-identical for every ``--jobs`` value
(the replay is downstream of the canonical flow order, so parallelism
cannot leak in), and a degraded ``partial-*`` run must confirm only
the flows that survived the ladder — never resurrect dropped ones.
"""

import json

from repro.core import TAJ, TAJConfig
from repro.resilience import Fault, FaultPlan

APP = """
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("p"));
    Connection c = DriverManager.getConnection("db");
    c.createStatement().executeQuery("q" + req.getParameter("u"));
    try {
      c.createStatement().executeUpdate("UPDATE t SET c = 1");
    } catch (SQLException e) {
      resp.getWriter().println(e);
    }
  }
}
"""


def verdict_bytes(result):
    assert result.confirmation is not None
    return json.dumps([v.to_dict()
                       for v in result.confirmation.verdicts],
                      sort_keys=True)


def test_verdicts_identical_across_jobs_counts():
    baseline = None
    for jobs in (1, 2, 4):
        config = TAJConfig.hybrid_unbounded().with_confirm()
        if jobs > 1:
            config = config.with_jobs(jobs)
        result = TAJ(config).analyze_sources([APP])
        assert result.flows, "the planted flows are reported"
        rendered = verdict_bytes(result)
        if baseline is None:
            baseline = rendered
        else:
            assert rendered == baseline, f"jobs={jobs} diverged"


def test_verdicts_identical_across_repeated_runs():
    config = TAJConfig.cs().with_confirm()
    first = TAJ(config).analyze_sources([APP])
    second = TAJ(config).analyze_sources([APP])
    assert verdict_bytes(first) == verdict_bytes(second)


def test_shard_grains_do_not_change_verdicts():
    reference = TAJ(TAJConfig.hybrid_unbounded().with_confirm()
                    ).analyze_sources([APP])
    for grain in ("rule", "entrypoint"):
        config = TAJConfig.hybrid_unbounded().with_confirm().with_jobs(
            2, shard_grain=grain)
        result = TAJ(config).analyze_sources([APP])
        assert verdict_bytes(result) == verdict_bytes(reference)


def test_partial_run_confirms_only_surviving_flows():
    """A CS run that trips its state budget degrades to hybrid; the
    confirmation pass covers exactly the surviving flow set."""
    config = TAJConfig.cs(max_state_units=5).with_resilience(
        resilient=True).with_confirm()
    result = TAJ(config).analyze_sources([APP])
    assert result.completeness == "partial-budget"
    assert result.flows
    conf = result.confirmation
    assert conf is not None
    flow_keys = {(f.rule, str(f.source), str(f.sink))
                 for f in result.flows}
    verdict_keys = {(v.rule, v.source, v.sink) for v in conf.verdicts}
    assert verdict_keys == flow_keys


def test_mid_sweep_fault_confirms_remaining_rules():
    """Rule 2 of the sweep dies (injected); confirmation still covers
    the surviving rules' flows and no phantom verdicts appear."""
    config = TAJConfig.hybrid_optimized().with_resilience(
        deadline_seconds=3600.0, resilient=True).with_confirm()
    fault = Fault("slicing.hybrid", at=1, exception="budget")
    result = TAJ(config, faults=FaultPlan.of(fault)).analyze_sources(
        [APP])
    assert result.completeness == "partial-budget"
    conf = result.confirmation
    assert conf is not None
    assert {(v.rule, v.source, v.sink) for v in conf.verdicts} == \
        {(f.rule, str(f.source), str(f.sink)) for f in result.flows}


def test_confirm_fault_degrades_without_killing_report():
    """A fault injected inside the confirm seam leaves the static
    report intact and records a confirm degradation."""
    config = TAJConfig.hybrid_unbounded().with_resilience(
        resilient=True).with_confirm()
    fault = Fault("confirm.replay", action="raise")
    result = TAJ(config, faults=FaultPlan.of(fault)).analyze_sources(
        [APP])
    assert result.flows and result.report is not None
    assert result.confirmation is None
    assert any(d.phase == "confirm" for d in result.degradations)
    assert result.completeness == "partial-fault"

"""Lexer unit tests."""

import pytest

from repro.lang import LexError, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


def test_empty_source_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind == "eof"


def test_identifiers_and_keywords():
    assert kinds("class Foo extends Bar") == [
        ("kw", "class"), ("id", "Foo"), ("kw", "extends"), ("id", "Bar")]


def test_identifier_with_dollar_and_underscore():
    assert kinds("$Root$X _a b$2") == [
        ("id", "$Root$X"), ("id", "_a"), ("id", "b$2")]


def test_integer_literal():
    assert kinds("42 0 123") == [("int", "42"), ("int", "0"),
                                 ("int", "123")]


def test_string_literal():
    assert kinds('"hello"') == [("string", "hello")]


def test_string_escapes():
    assert kinds(r'"a\nb\t\"c\\"') == [("string", 'a\nb\t"c\\')]


def test_bad_escape_rejected():
    with pytest.raises(LexError):
        tokenize(r'"\q"')


def test_unterminated_string_rejected():
    with pytest.raises(LexError):
        tokenize('"abc')


def test_symbols_longest_match():
    assert kinds("== = <= < ++ + &&") == [
        ("sym", "=="), ("sym", "="), ("sym", "<="), ("sym", "<"),
        ("sym", "++"), ("sym", "+"), ("sym", "&&")]


def test_line_comment_skipped():
    assert kinds("a // comment\nb") == [("id", "a"), ("id", "b")]


def test_block_comment_skipped():
    assert kinds("a /* x\ny */ b") == [("id", "a"), ("id", "b")]


def test_unterminated_block_comment_rejected():
    with pytest.raises(LexError):
        tokenize("/* never ends")


def test_line_and_column_tracking():
    toks = tokenize("a\n  b")
    assert toks[0].line == 1 and toks[0].col == 1
    assert toks[1].line == 2 and toks[1].col == 3


def test_unexpected_character_rejected():
    with pytest.raises(LexError):
        tokenize("a # b")


def test_keywords_are_not_identifiers():
    toks = tokenize("returnx return")
    assert toks[0].kind == "id"
    assert toks[1].kind == "kw"


def test_string_position_reported_at_opening_quote():
    toks = tokenize('  "x"')
    assert toks[0].col == 3


def test_mixed_program_token_stream():
    source = 'class C { void m() { int x = 1 + 2; } }'
    texts = [t.text for t in tokenize(source)[:-1]]
    assert texts == ["class", "C", "{", "void", "m", "(", ")", "{", "int",
                     "x", "=", "1", "+", "2", ";", "}", "}"]

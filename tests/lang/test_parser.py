"""Parser unit tests."""

import pytest

from repro.lang import ParseError, parse
from repro.lang import ast


def parse_class(body: str, name: str = "C"):
    unit = parse(f"class {name} {{ {body} }}")
    return unit.classes[0]


def parse_method_body(stmts: str):
    cls = parse_class(f"void m() {{ {stmts} }}")
    return cls.methods[0].body


def test_empty_class():
    cls = parse_class("")
    assert cls.name == "C"
    assert cls.super_name == "Object"
    assert not cls.is_interface


def test_class_with_extends_and_implements():
    unit = parse("class A extends B implements X, Y { }")
    cls = unit.classes[0]
    assert cls.super_name == "B"
    assert cls.interfaces == ["X", "Y"]


def test_library_modifier():
    unit = parse("library class L { }")
    assert unit.classes[0].is_library


def test_interface_declaration():
    unit = parse("interface I { void m(String s); }")
    cls = unit.classes[0]
    assert cls.is_interface
    assert cls.methods[0].name == "m"


def test_field_declarations():
    cls = parse_class("String a; static int b;")
    assert cls.fields[0].name == "a" and not cls.fields[0].is_static
    assert cls.fields[1].name == "b" and cls.fields[1].is_static


def test_method_modifiers():
    cls = parse_class("static native String m(int a, String b);")
    method = cls.methods[0]
    assert method.is_static and method.is_native
    assert [p.name for p in method.params] == ["a", "b"]
    assert method.body is None


def test_constructor_parsed_as_init():
    cls = parse_class("C(String s) { }")
    assert cls.methods[0].name == "<init>"
    assert cls.methods[0].is_constructor


def test_access_modifiers_are_ignored():
    cls = parse_class("public String m() { return null; } "
                      "private int f;")
    assert cls.methods[0].name == "m"
    assert cls.fields[0].name == "f"


def test_array_types():
    cls = parse_class("String[] m(Object[] a) { return null; }")
    method = cls.methods[0]
    assert method.return_type == "String[]"
    assert method.params[0].type_name == "Object[]"


def test_throws_clause_skipped():
    cls = parse_class("void m() throws IOException, Foo { }")
    assert cls.methods[0].name == "m"


def test_var_decl_with_init():
    stmts = parse_method_body('String s = "x";')
    decl = stmts[0]
    assert isinstance(decl, ast.VarDecl)
    assert decl.type_name == "String"
    assert isinstance(decl.init, ast.Literal)


def test_if_else():
    stmts = parse_method_body("if (a) { x = 1; } else { x = 2; }")
    node = stmts[0]
    assert isinstance(node, ast.If)
    assert len(node.then_body) == 1 and len(node.else_body) == 1


def test_if_without_braces():
    stmts = parse_method_body("if (a) x = 1;")
    assert isinstance(stmts[0], ast.If)
    assert len(stmts[0].then_body) == 1


def test_while_loop():
    stmts = parse_method_body("while (a) { b = 1; }")
    assert isinstance(stmts[0], ast.While)


def test_for_desugars_to_while():
    stmts = parse_method_body("for (int i = 0; i < 3; i++) { s = i; }")
    block = stmts[0]
    assert isinstance(block, ast.Block)
    assert isinstance(block.body[0], ast.VarDecl)
    loop = block.body[1]
    assert isinstance(loop, ast.While)
    # loop body carries the update statement at the end
    assert isinstance(loop.body[-1], ast.Assign)


def test_for_with_empty_sections():
    stmts = parse_method_body("for (;;) { break; }")
    loop = stmts[0].body[0]
    assert isinstance(loop, ast.While)


def test_break_continue():
    stmts = parse_method_body("while (a) { break; continue; }")
    loop = stmts[0]
    assert isinstance(loop.body[0], ast.Break)
    assert isinstance(loop.body[1], ast.Continue)


def test_try_catch():
    stmts = parse_method_body(
        "try { x = 1; } catch (Exception e) { y = 2; }")
    node = stmts[0]
    assert isinstance(node, ast.Try)
    assert node.catches[0].exc_type == "Exception"
    assert node.catches[0].var_name == "e"


def test_try_multiple_catches_and_finally():
    stmts = parse_method_body(
        "try { x = 1; } catch (IOException a) { } "
        "catch (Exception b) { } finally { z = 3; }")
    node = stmts[0]
    assert len(node.catches) == 2
    assert len(node.finally_body) == 1


def test_try_requires_catch_or_finally():
    with pytest.raises(ParseError):
        parse_method_body("try { x = 1; }")


def test_return_with_and_without_value():
    stmts = parse_method_body("return; ")
    assert isinstance(stmts[0], ast.Return) and stmts[0].value is None
    stmts = parse_method_body("return x;")
    assert isinstance(stmts[0].value, ast.NameRef)


def test_throw():
    stmts = parse_method_body("throw e;")
    assert isinstance(stmts[0], ast.Throw)


def test_method_call_chain():
    stmts = parse_method_body("a.b().c(x, y);")
    expr = stmts[0].expr
    assert isinstance(expr, ast.MethodCall)
    assert expr.method_name == "c"
    assert isinstance(expr.target, ast.MethodCall)


def test_field_access_chain():
    stmts = parse_method_body("x = a.b.c;")
    value = stmts[0].value
    assert isinstance(value, ast.FieldAccess) and value.field_name == "c"
    assert isinstance(value.target, ast.FieldAccess)


def test_index_access():
    stmts = parse_method_body("x = a[i];")
    assert isinstance(stmts[0].value, ast.IndexAccess)


def test_index_assignment():
    stmts = parse_method_body("a[i] = x;")
    assert isinstance(stmts[0].target, ast.IndexAccess)


def test_new_object():
    stmts = parse_method_body("x = new Foo(a, b);")
    value = stmts[0].value
    assert isinstance(value, ast.NewObject)
    assert value.class_name == "Foo" and len(value.args) == 2


def test_new_array_with_length():
    stmts = parse_method_body("x = new String[5];")
    value = stmts[0].value
    assert isinstance(value, ast.NewArrayExpr)
    assert value.element_type == "String"


def test_new_array_literal():
    stmts = parse_method_body("x = new Object[] { a, b };")
    value = stmts[0].value
    assert isinstance(value, ast.NewArrayExpr)
    assert len(value.initializer) == 2


def test_cast_expression():
    stmts = parse_method_body("x = (String) y;")
    value = stmts[0].value
    assert isinstance(value, ast.Cast) and value.type_name == "String"


def test_cast_of_call():
    stmts = parse_method_body("x = (String) m.get(k);")
    assert isinstance(stmts[0].value, ast.Cast)


def test_parenthesized_expression_is_not_cast():
    stmts = parse_method_body("x = (y);")
    assert isinstance(stmts[0].value, ast.NameRef)


def test_binary_precedence():
    stmts = parse_method_body("x = a + b * c;")
    value = stmts[0].value
    assert value.op == "+"
    assert value.right.op == "*"


def test_comparison_and_logic():
    stmts = parse_method_body("x = a < b && c == d;")
    value = stmts[0].value
    assert value.op == "&&"
    assert value.left.op == "<" and value.right.op == "=="


def test_unary_not():
    stmts = parse_method_body("x = !a;")
    assert isinstance(stmts[0].value, ast.Unary)


def test_plus_equals_desugars():
    stmts = parse_method_body("x += 2;")
    node = stmts[0]
    assert isinstance(node, ast.Assign)
    assert node.value.op == "+"


def test_increment_desugars():
    stmts = parse_method_body("x++;")
    node = stmts[0]
    assert isinstance(node, ast.Assign)
    assert node.value.op == "+"


def test_this_reference():
    stmts = parse_method_body("x = this.f;")
    assert isinstance(stmts[0].value.target, ast.ThisRef)


def test_null_true_false_literals():
    stmts = parse_method_body("a = null; b = true; c = false;")
    assert stmts[0].value.value is None
    assert stmts[1].value.value is True
    assert stmts[2].value.value is False


def test_parse_error_on_garbage():
    with pytest.raises(ParseError):
        parse("class C { void m() { x = ; } }")


def test_parse_error_reports_position():
    with pytest.raises(ParseError) as exc:
        parse("class C {\n  void m() { ! }\n}")
    assert exc.value.line == 2

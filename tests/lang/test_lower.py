"""Lowering tests: AST → IR."""

import pytest

from repro.ir import (ArrayLoad, ArrayStore, Assign, BinOp, Call, Cast,
                      Const, EnterCatch, Load, New, NewArray, Return,
                      StaticLoad, StaticStore, Store)
from repro.lang import LowerError, lower_source
from tests.conftest import lower_mini


def instrs_of(program, qname):
    return list(program.lookup_method(qname).instructions())


def find(program, qname, kind):
    return [i for i in instrs_of(program, qname) if isinstance(i, kind)]


def test_simple_method_lowered():
    program = lower_mini("class C { int m() { return 1; } }")
    instrs = instrs_of(program, "C.m/0")
    assert isinstance(instrs[0], Const)
    assert isinstance(instrs[-1], Return)


def test_param_and_local_flow():
    program = lower_mini(
        "class C { Object m(Object p) { Object x = p; return x; } }")
    assigns = find(program, "C.m/1", Assign)
    assert any(a.rhs == "p" for a in assigns)


def test_field_store_and_load():
    program = lower_mini("""
class C {
  Object f;
  void set(Object v) { this.f = v; }
  Object get() { return this.f; }
}""")
    stores = find(program, "C.set/1", Store)
    assert stores[0].base == "this" and stores[0].fld == "f"
    loads = find(program, "C.get/0", Load)
    assert loads[0].fld == "f"


def test_implicit_this_field_access():
    program = lower_mini("""
class C {
  Object f;
  Object m() { return f; }
  void s(Object v) { f = v; }
}""")
    assert find(program, "C.m/0", Load)[0].base == "this"
    assert find(program, "C.s/1", Store)[0].base == "this"


def test_static_field_access():
    program = lower_mini("""
class C {
  static Object g;
  void m(Object v) { C.g = v; Object x = C.g; }
}""")
    assert find(program, "C.m/1", StaticStore)[0].class_name == "C"
    assert find(program, "C.m/1", StaticLoad)[0].fld == "g"


def test_inherited_static_field_resolves():
    program = lower_mini("""
class Base { static Object g; }
class C extends Base {
  void m(Object v) { g = v; }
}""")
    store = find(program, "C.m/1", StaticStore)[0]
    assert store.class_name == "Base"


def test_array_operations():
    program = lower_mini("""
class C {
  void m(Object v) {
    Object[] a = new Object[3];
    a[0] = v;
    Object x = a[1];
  }
}""")
    assert find(program, "C.m/1", NewArray)
    assert find(program, "C.m/1", ArrayStore)
    assert find(program, "C.m/1", ArrayLoad)


def test_array_literal_stores_elements():
    program = lower_mini("""
class C {
  void m(Object v) { Object[] a = new Object[] { v, v }; }
}""")
    assert len(find(program, "C.m/1", ArrayStore)) == 2


def test_new_object_emits_alloc_and_ctor_call():
    program = lower_mini("""
class D { D(Object v) { } }
class C { void m(Object v) { D d = new D(v); } }""")
    news = find(program, "C.m/1", New)
    assert news[0].class_name == "D"
    ctors = [c for c in find(program, "C.m/1", Call)
             if c.method_name == "<init>"]
    assert ctors and ctors[0].kind == "special"


def test_new_without_ctor_has_no_ctor_call():
    program = lower_mini("""
class D { }
class C { void m() { D d = new D(); } }""")
    assert not find(program, "C.m/0", Call)


def test_virtual_call_on_local():
    program = lower_mini("""
class D { void go() { } }
class C { void m(D d) { d.go(); } }""")
    call = find(program, "C.m/1", Call)[0]
    assert call.kind == "virtual" and call.receiver == "d"


def test_static_call_resolution():
    program = lower_mini("""
class U { static Object id(Object v) { return v; } }
class C { Object m(Object v) { return U.id(v); } }""")
    call = find(program, "C.m/1", Call)[0]
    assert call.kind == "static" and call.class_name == "U"


def test_local_shadows_class_name():
    program = lower_mini("""
class U { static Object id(Object v) { return v; } }
class C {
  Object m(U U2) { return U.id(U2); }
}""")
    call = find(program, "C.m/1", Call)[0]
    assert call.kind == "static"


def test_implicit_self_call():
    program = lower_mini("""
class C {
  void helper() { }
  void m() { helper(); }
}""")
    call = find(program, "C.m/0", Call)[0]
    assert call.kind == "virtual" and call.receiver == "this"


def test_implicit_static_call_in_static_method():
    program = lower_mini("""
class C {
  static void helper() { }
  static void m() { helper(); }
}""")
    call = find(program, "C.m/0", Call)[0]
    assert call.kind == "static"


def test_catch_defines_exception_var():
    program = lower_mini("""
class C {
  void m() {
    try { int x = 1; } catch (Exception e) { Object y = e; }
  }
}""")
    catches = find(program, "C.m/0", EnterCatch)
    assert catches and catches[0].exc_type == "Exception"


def test_try_entry_branches_to_catch():
    program = lower_mini("""
class C {
  void m() {
    try { int x = 1; } catch (Exception e) { int y = 2; }
  }
}""")
    method = program.lookup_method("C.m/0")
    catch_blocks = {bid for bid, block in method.blocks.items()
                    if any(isinstance(i, EnterCatch) for i in block.instrs)}
    assert catch_blocks
    preds = set()
    for bid in catch_blocks:
        preds.update(method.blocks[bid].preds)
    assert preds  # reachable from the dispatch chain


def test_string_concat_is_binop():
    program = lower_mini("""
class C { Object m(Object a) { return "x" + a; } }""")
    ops = find(program, "C.m/1", BinOp)
    assert ops and ops[0].op == "+"


def test_cast_lowered():
    program = lower_mini("""
class D { }
class C { D m(Object o) { return (D) o; } }""")
    casts = find(program, "C.m/1", Cast)
    assert casts[0].type_name == "D"


def test_unknown_name_rejected():
    with pytest.raises(LowerError):
        lower_mini("class C { void m() { x = nothere; } }")


def test_this_in_static_method_rejected():
    with pytest.raises(LowerError):
        lower_mini("class C { static void m() { Object x = this; } }")


def test_break_outside_loop_rejected():
    with pytest.raises(LowerError):
        lower_mini("class C { void m() { break; } }")


def test_duplicate_class_rejected():
    with pytest.raises(LowerError):
        lower_mini("class C { } class C { }")


def test_var_types_recorded():
    program = lower_mini("""
class C {
  String m(String s) {
    String x = s;
    C c = new C();
    return x;
  }
}""")
    method = program.lookup_method("C.m/1")
    assert method.type_of("x") == "String"
    assert method.type_of("c") == "C"
    assert method.type_of("this") == "C"


def test_call_return_type_inferred():
    program = lower_mini("""
class C {
  String name() { return "n"; }
  void m() { String x = this.name(); }
}""")
    method = program.lookup_method("C.m/0")
    # The temp holding the call result is typed String.
    assert method.type_of("x") == "String"


def test_shadowed_local_gets_fresh_name():
    program = lower_mini("""
class C {
  void m() {
    int x = 1;
    if (x > 0) { int y = 2; }
    if (x > 1) { int y = 3; }
  }
}""")
    names = set()
    for instr in instrs_of(program, "C.m/0"):
        names.update(instr.defs())
    assert "y" in names and "y$1" in names


def test_scoped_redeclaration_in_blocks():
    program = lower_mini("""
class C {
  int m() {
    int x = 1;
    { int x2 = x; }
    return x;
  }
}""")
    assert program.lookup_method("C.m/0") is not None


def test_line_numbers_preserved():
    program = lower_mini("""
class C {
  void m() {
    int x = 1;
  }
}""")
    instrs = instrs_of(program, "C.m/0")
    assert any(i.line > 0 for i in instrs)


def test_sources_can_reference_each_other():
    from repro.lang import lower_sources
    program = lower_sources([
        "library class Object { }",
        "class A { static Object mk() { return new B(); } }",
        "class B { }",
    ])
    assert program.get_class("A") and program.get_class("B")

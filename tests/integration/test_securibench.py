"""The SecuriBench-Micro-style suite, per configuration.

The precise hybrid configuration must match every case's expectation
exactly; CI must be a sound over-approximation; the dynamic interpreter
must agree with the expectations on realizable flows.
"""

import pytest

from repro import TAJ, TAJConfig
from repro.bench.securibench import CASES, all_cases, case_count
from repro.interp import run_dynamic

ALL = list(all_cases())


def _counts(result):
    out = {}
    for issue in result.report.issues:
        out[issue.rule] = out.get(issue.rule, 0) + 1
    return out


@pytest.mark.parametrize("category,name,source,expected",
                         ALL, ids=[f"{c}:{n}" for c, n, _, _ in ALL])
def test_hybrid_matches_expectation(category, name, source, expected):
    result = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources([source])
    got = _counts(result)
    for rule, count in expected.items():
        assert got.get(rule, 0) == count, f"{category}:{name} -> {got}"


@pytest.mark.parametrize("category,name,source,expected",
                         ALL, ids=[f"{c}:{n}" for c, n, _, _ in ALL])
def test_ci_is_sound(category, name, source, expected):
    result = TAJ(TAJConfig.ci()).analyze_sources([source])
    got = _counts(result)
    for rule, count in expected.items():
        assert got.get(rule, 0) >= count, f"{category}:{name} -> {got}"


def test_suite_has_substantial_coverage():
    assert case_count() >= 30
    assert len(CASES) >= 10  # categories


# Cases whose expected flows rely on static over-approximation (the
# array index collapse and the weak heap update): the dynamic run
# legitimately observes nothing there.
_STATIC_ONLY = {"Arrays2_collapsed_indices", "Data4_field_overwrite_weak",
                "Strong2_branch_join", "Collections3_unknown_key"}


@pytest.mark.parametrize(
    "category,name,source,expected",
    [row for row in ALL if any(v > 0 for v in row[3].values())
     and row[1] not in _STATIC_ONLY],
    ids=[f"{c}:{n}" for c, n, _, e in ALL
         if any(v > 0 for v in e.values()) and n not in _STATIC_ONLY])
def test_positive_cases_dynamically_confirmed(category, name, source,
                                              expected):
    summary = run_dynamic([source])
    confirmed = any(
        summary.confirms(rule, witness.sink_method)
        for rule, count in expected.items() if count > 0
        for witness in summary.witnesses)
    assert confirmed, f"{category}:{name} not realizable"


@pytest.mark.parametrize(
    "category,name,source,expected",
    [row for row in ALL if all(v == 0 for v in row[3].values())],
    ids=[f"{c}:{n}" for c, n, _, e in ALL
         if all(v == 0 for v in e.values())])
def test_negative_cases_dynamically_silent(category, name, source,
                                           expected):
    summary = run_dynamic([source])
    for rule in ("XSS", "SQLI", "MALICIOUS_FILE", "INFO_LEAK"):
        for witness in summary.witnesses:
            assert not summary.confirms(rule, witness.sink_method), \
                f"{category}:{name}: {rule} at {witness.sink_method}"

"""Integration tests on the paper's Figure 1 motivating program."""

from repro.bench.micro import MOTIVATING


def issue_lines(result):
    return sorted(i.sink_line for i in result.report.issues)


def test_hybrid_reports_exactly_the_bad_println(motivating_hybrid):
    assert motivating_hybrid.issues == 1
    issue = motivating_hybrid.report.issues[0]
    assert issue.rule == "XSS"
    assert issue.sink_method == "PrintWriter.println"
    assert issue.via_carrier  # the Internal object is a taint carrier


def test_hybrid_source_is_fname_parameter(motivating_hybrid):
    issue = motivating_hybrid.report.issues[0]
    # The source is the first getParameter call ("fName"), which is on a
    # lower line than the second one.
    assert "Motivating.doGet" in issue.source


def test_cs_matches_hybrid_on_figure1(motivating_cs):
    assert motivating_cs.issues == 1


def test_ci_reports_all_three_printlns(motivating_ci):
    """CI cannot disambiguate the three reflective id() calls, exactly
    as the paper's discussion of Figure 1 predicts."""
    assert motivating_ci.issues == 3


def test_reflection_was_resolved(motivating_hybrid):
    assert motivating_hybrid.stats["reflective_calls_resolved"] == 3


def test_dictionary_accesses_modeled(motivating_hybrid):
    assert motivating_hybrid.stats["dictionary_accesses"] >= 6


def test_flows_are_deduplicated(motivating_hybrid):
    keys = [f.key() for f in motivating_hybrid.flows]
    assert len(keys) == len(set(keys))


def test_lcp_is_the_sink_call(motivating_hybrid):
    """The sink println is invoked directly from application code, so it
    is itself the last app→library transition (the LCP)."""
    issue = motivating_hybrid.report.issues[0]
    assert issue.lcp == issue.sink


def test_call_graph_includes_reflective_target(motivating_hybrid):
    assert motivating_hybrid.cg_nodes > 0


def test_phase_times_recorded(motivating_hybrid):
    times = motivating_hybrid.times
    assert times.total > 0
    assert times.pointer_analysis >= 0
    assert times.taint >= 0

"""Every micro case, end to end, with the precise (hybrid) configuration.

Each case isolates one capability from the paper: sources and sinks for
all four attack vectors, sanitizers, string carriers, constant-key
dictionaries, taint carriers and their clone precision, heap flow,
reflection, frameworks, threads, by-reference sources.
"""

import pytest

from repro import TAJ, TAJConfig
from repro.bench.micro import MICRO_CASES, MICRO_DESCRIPTORS


@pytest.mark.parametrize("name", sorted(MICRO_CASES))
def test_micro_case_hybrid(name):
    source, expected = MICRO_CASES[name]
    descriptor = MICRO_DESCRIPTORS.get(name)
    result = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources(
        [source], deployment_descriptor=descriptor)
    got = {}
    for issue in result.report.issues:
        got[issue.rule] = got.get(issue.rule, 0) + 1
    for rule, count in expected.items():
        assert got.get(rule, 0) == count, \
            f"{name}: expected {count} {rule} issue(s), got {got}"


@pytest.mark.parametrize("name", sorted(MICRO_CASES))
def test_micro_case_optimized_preserves_shallow_findings(name):
    """The fully-optimized configuration keeps every micro finding: the
    micro cases are all shallow/short flows (the bounds only cut deep or
    long ones)."""
    source, expected = MICRO_CASES[name]
    descriptor = MICRO_DESCRIPTORS.get(name)
    result = TAJ(TAJConfig.hybrid_optimized()).analyze_sources(
        [source], deployment_descriptor=descriptor)
    got = {}
    for issue in result.report.issues:
        got[issue.rule] = got.get(issue.rule, 0) + 1
    for rule, count in expected.items():
        assert got.get(rule, 0) == count, f"{name}: {got}"


def test_ci_is_sound_on_all_positive_micro_cases():
    """CI may add false positives but must find every real flow."""
    for name, (source, expected) in sorted(MICRO_CASES.items()):
        descriptor = MICRO_DESCRIPTORS.get(name)
        result = TAJ(TAJConfig.ci()).analyze_sources(
            [source], deployment_descriptor=descriptor)
        got = {}
        for issue in result.report.issues:
            got[issue.rule] = got.get(issue.rule, 0) + 1
        for rule, count in expected.items():
            assert got.get(rule, 0) >= count, f"{name}: {got}"


def test_cs_misses_only_thread_flows():
    """CS is precise but unsound exactly for the cross-thread case."""
    for name, (source, expected) in sorted(MICRO_CASES.items()):
        descriptor = MICRO_DESCRIPTORS.get(name)
        result = TAJ(TAJConfig.cs(max_state_units=None)).analyze_sources(
            [source], deployment_descriptor=descriptor)
        got = {}
        for issue in result.report.issues:
            got[issue.rule] = got.get(issue.rule, 0) + 1
        for rule, count in expected.items():
            if name == "thread_flow":
                assert got.get(rule, 0) == 0
            else:
                assert got.get(rule, 0) >= count, f"{name}: {got}"

"""Program/method structure tests."""

import pytest

from repro.ir import (Assign, ClassDecl, Const, FieldDecl, Goto, If, Method,
                      Param, Program, Return, STRING, parse_type)
from tests.conftest import lower_mini


def build_method():
    method = Method("C", "m", [Param("p", STRING)])
    return method


def test_qname_format():
    method = build_method()
    assert method.qname == "C.m/1"
    assert method.display_name == "C.m"


def test_finish_terminates_open_blocks_with_return():
    """Block ids carry no fallthrough meaning (they are allocated out of
    order around try/catch), so an unterminated block returns."""
    method = build_method()
    b0 = method.new_block()
    method.append(b0, Const("x", 1))
    b1 = method.new_block()
    method.append(b1, Return(None))
    method.finish()
    assert isinstance(method.blocks[0].terminator, Return)
    assert method.blocks[0].succs == []
    # b1 became unreachable and was pruned.
    assert 1 not in method.blocks


def test_finish_adds_implicit_return():
    method = build_method()
    b0 = method.new_block()
    method.append(b0, Const("x", 1))
    method.finish()
    assert isinstance(method.blocks[0].terminator, Return)


def test_finish_prunes_unreachable_blocks():
    method = build_method()
    b0 = method.new_block()
    method.append(b0, Return(None))
    method.new_block()  # unreachable
    method.finish()
    assert list(method.blocks) == [0]


def test_iids_are_unique_and_increasing():
    method = build_method()
    b0 = method.new_block()
    i1 = method.append(b0, Const("x", 1))
    i2 = method.append(b0, Assign("y", "x"))
    assert i2.iid > i1.iid >= 0


def test_if_terminator_successors():
    method = build_method()
    b0 = method.new_block()
    b1 = method.new_block()
    b2 = method.new_block()
    method.append(b0, If("c", b1.bid, b2.bid))
    method.append(b1, Return(None))
    method.append(b2, Return(None))
    method.finish()
    assert method.blocks[0].succs == [1, 2]


def test_program_duplicate_class_rejected():
    program = Program()
    program.add_class(ClassDecl("C"))
    with pytest.raises(ValueError):
        program.add_class(ClassDecl("C"))


def test_lookup_method():
    program = lower_mini("class C { void m(Object a) { } }")
    assert program.lookup_method("C.m/1") is not None
    assert program.lookup_method("C.m/2") is None
    assert program.lookup_method("Nope.m/1") is None
    assert program.lookup_method("garbage") is None


def test_application_vs_library_partition():
    program = lower_mini("class C { }")
    app = {c.name for c in program.application_classes()}
    lib = {c.name for c in program.library_classes()}
    assert "C" in app and "Object" in lib
    assert not app & lib


def test_stats_counts():
    program = lower_mini("""
class C {
  void m() { int x = 1; }
  void n() { int y = 2; }
}""")
    stats = program.stats()
    assert stats["app_classes"] == 1
    assert stats["app_methods"] == 2
    assert stats["total_classes"] > stats["app_classes"]
    assert stats["app_instructions"] > 0


def test_merge_programs():
    a = lower_mini("class A { }")
    b = Program()
    b.add_class(ClassDecl("B"))
    b.entrypoints.append("B.main/0")
    a.merge(b)
    assert a.get_class("B") is not None
    assert "B.main/0" in a.entrypoints


def test_type_of_handles_ssa_versions():
    method = build_method()
    method.var_types["x"] = "String"
    assert method.type_of("x.3") == "String"
    assert method.type_of("x") == "String"
    assert method.type_of("unknown") is None


def test_field_decl_lookup():
    cls = ClassDecl("C")
    cls.add_field(FieldDecl("f", parse_type("String")))
    assert cls.fields["f"].type == STRING


def test_instruction_count():
    program = lower_mini("class C { void m() { int x = 1; } }")
    method = program.lookup_method("C.m/0")
    assert method.instruction_count() == len(list(method.instructions()))

"""Instruction def/use semantics — the contract every analysis relies on."""

from repro.ir import (ARRAY_CONTENTS, ArrayLoad, ArrayStore, Assign, BinOp,
                      Call, Cast, Const, EnterCatch, Goto, If, Load, New,
                      Phi, Return, Select, StaticLoad, StaticStore, Store,
                      StringOp, Throw, UnOp, is_terminator)


def test_const_defines_lhs():
    instr = Const("x", 1)
    assert instr.defs() == ["x"] and instr.uses() == []


def test_assign_def_use():
    instr = Assign("x", "y")
    assert instr.defs() == ["x"] and instr.uses() == ["y"]
    assert instr.value_uses() == ["y"]


def test_binop_uses_both_operands():
    instr = BinOp("x", "+", "a", "b")
    assert set(instr.uses()) == {"a", "b"}


def test_load_base_is_not_a_value_use():
    instr = Load("x", "base", "f")
    assert instr.uses() == ["base"]
    assert instr.value_uses() == []  # thin-slicing base-pointer exclusion


def test_store_value_use_excludes_base():
    instr = Store("base", "f", "v")
    assert set(instr.uses()) == {"base", "v"}
    assert instr.value_uses() == ["v"]


def test_array_ops_mirror_field_ops():
    load = ArrayLoad("x", "arr", "i")
    assert load.value_uses() == []
    store = ArrayStore("arr", "v", "i")
    assert store.value_uses() == ["v"]


def test_static_ops():
    assert StaticLoad("x", "C", "f").defs() == ["x"]
    assert StaticStore("C", "f", "v").uses() == ["v"]


def test_call_uses_receiver_and_args():
    call = Call("r", "virtual", "C", "m", "recv", ["a", "b"])
    assert call.defs() == ["r"]
    assert call.uses() == ["recv", "a", "b"]
    assert call.arity == 2
    assert call.target_id() == "C.m"


def test_call_without_lhs_defines_nothing():
    call = Call(None, "static", "C", "m", None, [])
    assert call.defs() == []


def test_stringop_flows_args_to_lhs():
    op = StringOp("x", "String.concat", ["a", "b"])
    assert op.defs() == ["x"] and op.uses() == ["a", "b"]


def test_select_flows_all_args():
    sel = Select("x", ["a", "b", "c"])
    assert sel.uses() == ["a", "b", "c"]


def test_cast_passes_value():
    cast = Cast("x", "T", "v")
    assert cast.defs() == ["x"] and cast.uses() == ["v"]


def test_phi_uses_operands():
    phi = Phi("x", {0: "a", 1: "b"})
    assert set(phi.uses()) == {"a", "b"}


def test_if_condition_is_not_value_relevant():
    instr = If("c", 1, 2)
    assert instr.uses() == ["c"]
    assert instr.value_uses() == []


def test_enter_catch_defines_exception():
    instr = EnterCatch("e", "IOException")
    assert instr.defs() == ["e"]


def test_terminators():
    assert is_terminator(Return(None))
    assert is_terminator(Goto(1))
    assert is_terminator(If("c", 0, 1))
    assert is_terminator(Throw("e"))
    assert not is_terminator(Assign("a", "b"))


def test_replace_uses_rewrites_in_place():
    instr = BinOp("x", "+", "a", "b")
    instr.replace_uses({"a": "a.1"})
    assert instr.left == "a.1" and instr.right == "b"


def test_replace_defs_rewrites_lhs():
    instr = Assign("x", "y")
    instr.replace_defs({"x": "x.2"})
    assert instr.lhs == "x.2"


def test_call_replace_uses_covers_receiver():
    call = Call("r", "virtual", "", "m", "recv", ["a"])
    call.replace_uses({"recv": "recv.1", "a": "a.1"})
    assert call.receiver == "recv.1" and call.args == ["a.1"]


def test_array_contents_marker():
    assert ARRAY_CONTENTS == "@elems"


def test_unop():
    instr = UnOp("x", "!", "a")
    assert instr.defs() == ["x"] and instr.uses() == ["a"]


def test_new_has_no_uses():
    assert New("x", "C").uses() == []

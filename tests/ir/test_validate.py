"""IR validation tests."""

import pytest

from repro.ir import (Assign, Const, Goto, Method, Param, Phi, Program,
                      Return, STRING, ValidationError, validate_method,
                      validate_program)
from tests.conftest import lower_mini


def test_lowered_program_validates():
    program = lower_mini("""
class C {
  int m(int p) {
    int x = 0;
    while (x < p) { x = x + 1; }
    return x;
  }
}""")
    validate_program(program)  # should not raise


def test_native_method_with_body_rejected():
    method = Method("C", "m", [], is_native=True)
    block = method.new_block()
    method.append(block, Return(None))
    assert validate_method(method)


def test_missing_terminator_detected():
    method = Method("C", "m", [])
    block = method.new_block()
    method.append(block, Const("x", 1))
    # finish() not called: no terminator.
    problems = validate_method(method)
    assert any("terminator" in p for p in problems)


def test_dangling_successor_detected():
    method = Method("C", "m", [])
    block = method.new_block()
    method.append(block, Goto(99))
    block.succs = [99]
    problems = validate_method(method)
    assert any("missing block" in p for p in problems)


def test_duplicate_iid_detected():
    method = Method("C", "m", [])
    block = method.new_block()
    a = method.append(block, Const("x", 1))
    b = method.append(block, Return(None))
    b.iid = a.iid
    problems = validate_method(method)
    assert any("duplicate iid" in p for p in problems)


def test_phi_after_non_phi_detected():
    method = Method("C", "m", [])
    block = method.new_block()
    method.append(block, Const("x", 1))
    phi = Phi("y", {})
    phi.iid = method.fresh_iid()
    block.instrs.insert(1, phi)
    method.append(block, Return(None))
    problems = validate_method(method)
    assert any("phi" in p for p in problems)


def test_unresolvable_entrypoint_detected():
    program = lower_mini("class C { void m() { } }")
    program.entrypoints.append("C.missing/0")
    with pytest.raises(ValidationError):
        validate_program(program)


def test_empty_block_detected():
    method = Method("C", "m", [])
    method.new_block()
    problems = validate_method(method)
    assert any("empty block" in p for p in problems)

"""Class-hierarchy and dispatch tests."""

from repro.ir import ClassHierarchy
from tests.conftest import lower_mini

SOURCE = """
interface Speaker { String speak(); }
class Animal {
  String speak() { return "..."; }
  String name() { return "animal"; }
}
class Dog extends Animal implements Speaker {
  String speak() { return "woof"; }
}
class Puppy extends Dog {
}
class Cat extends Animal {
  String speak() { return "meow"; }
}
"""


def hierarchy():
    program = lower_mini(SOURCE)
    return program, ClassHierarchy(program)


def test_subtype_reflexive():
    _, h = hierarchy()
    assert h.is_subtype("Dog", "Dog")


def test_subtype_transitive():
    _, h = hierarchy()
    assert h.is_subtype("Puppy", "Animal")
    assert not h.is_subtype("Animal", "Puppy")


def test_everything_subtypes_object():
    _, h = hierarchy()
    assert h.is_subtype("Cat", "Object")


def test_interface_subtyping():
    _, h = hierarchy()
    assert h.is_subtype("Dog", "Speaker")
    assert h.is_subtype("Puppy", "Speaker")  # inherited interface
    assert not h.is_subtype("Cat", "Speaker")


def test_subtypes_enumeration():
    _, h = hierarchy()
    assert h.subtypes("Animal") >= {"Animal", "Dog", "Puppy", "Cat"}


def test_concrete_subtypes_excludes_interfaces():
    _, h = hierarchy()
    subs = h.concrete_subtypes("Speaker")
    assert "Speaker" not in subs
    assert set(subs) >= {"Dog", "Puppy"}


def test_dispatch_direct():
    _, h = hierarchy()
    assert h.dispatch("Cat", "speak", 0).class_name == "Cat"


def test_dispatch_inherited():
    _, h = hierarchy()
    # Puppy inherits Dog's override.
    assert h.dispatch("Puppy", "speak", 0).class_name == "Dog"
    # name() comes from Animal.
    assert h.dispatch("Puppy", "name", 0).class_name == "Animal"


def test_dispatch_miss_returns_none():
    _, h = hierarchy()
    assert h.dispatch("Dog", "fly", 0) is None
    assert h.dispatch("Unknown", "speak", 0) is None


def test_dispatch_respects_arity():
    _, h = hierarchy()
    assert h.dispatch("Dog", "speak", 2) is None


def test_superclass_chain():
    _, h = hierarchy()
    assert h.superclass_chain("Puppy") == ["Puppy", "Dog", "Animal",
                                           "Object"]


def test_resolve_field_owner():
    program = lower_mini("""
class Base { String f; }
class Derived extends Base { String g; }
""")
    h = ClassHierarchy(program)
    assert h.resolve_field_owner("Derived", "f") == "Base"
    assert h.resolve_field_owner("Derived", "g") == "Derived"
    assert h.resolve_field_owner("Derived", "nope") is None


def test_all_overrides():
    _, h = hierarchy()
    owners = {m.class_name for m in h.all_overrides("speak", 0)}
    assert owners >= {"Animal", "Dog", "Cat"}

"""IR printer tests."""

from repro.ir import format_class, format_method, format_program
from tests.conftest import lower_mini


def test_format_method_contains_blocks_and_iids():
    program = lower_mini("""
class C {
  int m(int p) { if (p > 0) { return 1; } return 2; }
}""")
    text = format_method(program.lookup_method("C.m/1"))
    assert "C.m/1" in text
    assert "B0:" in text
    assert "[  0]" in text


def test_format_method_shows_modifiers():
    program = lower_mini("class C { static native void m(); }")
    text = format_method(program.lookup_method("C.m/0"))
    assert "static" in text and "native" in text


def test_format_class_lists_fields():
    program = lower_mini("class C { String f; static int g; }")
    text = format_class(program.get_class("C"))
    assert "String f;" in text
    assert "static int g;" in text


def test_format_program_orders_classes_and_entrypoints():
    program = lower_mini("class Zed { } class Abc { }")
    program.entrypoints.append("Abc.x/0")
    text = format_program(program)
    assert text.index("class Abc") < text.index("class Zed")
    assert "entrypoints: Abc.x/0" in text


def test_library_marker_printed():
    program = lower_mini("class C { }")
    text = format_class(program.get_class("Object"))
    assert text.startswith("library class Object")

"""Type representation tests."""

from repro.ir import (ArrayType, BOOLEAN, ClassType, INT, PrimitiveType,
                      STRING, VOID, erasure, parse_type)


def test_parse_primitive():
    assert parse_type("int") is INT
    assert parse_type("boolean") is BOOLEAN
    assert parse_type("void") is VOID


def test_parse_class_type():
    t = parse_type("Foo")
    assert isinstance(t, ClassType) and t.name == "Foo"


def test_parse_array_type():
    t = parse_type("String[]")
    assert isinstance(t, ArrayType)
    assert t.element == STRING


def test_parse_nested_array():
    t = parse_type("int[][]")
    assert isinstance(t, ArrayType) and isinstance(t.element, ArrayType)


def test_is_reference():
    assert not INT.is_reference()
    assert STRING.is_reference()
    assert parse_type("Foo[]").is_reference()


def test_str_round_trip():
    for text in ("int", "Foo", "String[]", "Object[][]"):
        assert str(parse_type(text)) == text


def test_erasure():
    assert erasure(parse_type("Foo")) == "Foo"
    assert erasure(parse_type("Foo[]")) == "Object"
    assert erasure(INT) == "int"


def test_types_are_interned_values():
    assert parse_type("Foo") == parse_type("Foo")
    assert hash(parse_type("A[]")) == hash(parse_type("A[]"))

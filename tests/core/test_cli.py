"""CLI tests."""

import json

import pytest

from repro.cli import main

APP = """
class Hello extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("name"));
  }
}
"""

CLEAN = """
class Clean extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println("static");
  }
}
"""


@pytest.fixture
def app_file(tmp_path):
    path = tmp_path / "app.jlang"
    path.write_text(APP)
    return str(path)


def test_reports_issue_and_exits_nonzero(app_file, capsys):
    code = main([app_file])
    out = capsys.readouterr().out
    assert code == 1
    assert "XSS" in out and "html-encode-output" in out


def test_clean_app_exits_zero(tmp_path, capsys):
    path = tmp_path / "clean.jlang"
    path.write_text(CLEAN)
    assert main([str(path)]) == 0
    assert "No tainted flows" in capsys.readouterr().out


def test_json_output(app_file, capsys):
    code = main(["--json", app_file])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["config"] == "hybrid-optimized"
    assert payload["issues"][0]["rule"] == "XSS"
    assert payload["call_graph_nodes"] > 0


def test_config_selection(app_file, capsys):
    main(["--config", "ci", "--json", app_file])
    payload = json.loads(capsys.readouterr().out)
    assert payload["config"] == "ci"


def test_budget_overrides(app_file, capsys):
    code = main(["--config", "unbounded", "--flow-length", "0",
                 "--json", app_file])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["issues"] == []


def test_extended_rules(tmp_path, capsys):
    path = tmp_path / "redir.jlang"
    path.write_text("""
class R extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.sendRedirect(req.getParameter("next"));
  }
}
""")
    main(["--rules", "extended", str(path)])
    assert "OPEN_REDIRECT" in capsys.readouterr().out


def test_descriptor_file(tmp_path, capsys):
    source = tmp_path / "ejb.jlang"
    source.write_text("""
class Bean { String echo(String v) { return v; } }
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    InitialContext ctx = new InitialContext();
    Object home = PortableRemoteObject.narrow(
        ctx.lookup("ejb/B"), "BeanHome");
    Bean bean = (Bean) home.create();
    resp.getWriter().println(bean.echo(req.getParameter("p")));
  }
}
""")
    descriptor = tmp_path / "dd.json"
    descriptor.write_text(json.dumps({"ejb/B": "Bean"}))
    code = main(["--descriptor", str(descriptor), str(source)])
    assert code == 1
    assert "XSS" in capsys.readouterr().out


def test_dynamic_flag(app_file, capsys):
    main(["--dynamic", app_file])
    out = capsys.readouterr().out
    assert "dynamic execution" in out
    assert "src:" in out


def test_trace_and_metrics_files(app_file, tmp_path, capsys):
    trace = tmp_path / "trace.json"
    jsonl = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.json"
    code = main(["--trace", str(trace), "--trace-jsonl", str(jsonl),
                 "--metrics", str(metrics), app_file])
    capsys.readouterr()
    assert code == 1

    payload = json.loads(trace.read_text())
    names = {event["name"] for event in payload["traceEvents"]}
    assert {"phase.modeling", "phase.pointer_analysis", "phase.sdg",
            "phase.taint", "phase.reporting"} <= names
    assert all(event["ph"] == "X" for event in payload["traceEvents"])

    rows = [json.loads(line) for line in
            jsonl.read_text().splitlines()]
    assert len(rows) == len(payload["traceEvents"])

    snapshot = json.loads(metrics.read_text())
    assert snapshot["counters"]["pointer.propagations"] > 0
    assert snapshot["gauges"]["memory.peak_bytes"] > 0
    assert snapshot["timers"]["pointer.constraint_solving"]["count"] == 1


def test_audit_file(app_file, tmp_path, capsys):
    audit = tmp_path / "audit.json"
    main(["--audit", str(audit), app_file])
    capsys.readouterr()
    payload = json.loads(audit.read_text())
    assert payload["flows"], "the XSS flow must leave a witness"
    witness = payload["flows"][0]
    assert witness["rule"] == "XSS"
    assert witness["grouping"]["representative"] is True
    assert any(r["rule"] == "XSS" and r["seeds"] > 0
               for r in payload["rules_consulted"])


def test_stats_prints_metrics_table(app_file, capsys):
    main(["--stats", app_file])
    out = capsys.readouterr().out
    assert "analysis metrics" in out
    assert "pointer.propagations" in out
    assert "-- timers (seconds) --" in out


def test_multiple_files(tmp_path, capsys):
    a = tmp_path / "a.jlang"
    a.write_text("class Util { static String id(String v) "
                 "{ return v; } }")
    b = tmp_path / "b.jlang"
    b.write_text("""
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(Util.id(req.getParameter("p")));
  }
}
""")
    assert main([str(a), str(b)]) == 1


def test_jobs_flag_produces_identical_reports(app_file, capsys):
    code = main(["--json", app_file])
    serial = json.loads(capsys.readouterr().out)
    code_par = main(["--json", "--jobs", "4", app_file])
    parallel = json.loads(capsys.readouterr().out)
    assert code == code_par == 1
    serial.pop("seconds")
    parallel.pop("seconds")
    assert parallel == serial


def test_jobs_flag_text_report_identical(app_file, capsys):
    main([app_file])
    serial = capsys.readouterr().out
    main(["--jobs", "3", app_file])
    assert capsys.readouterr().out == serial

"""TAJ facade tests."""

import pytest

from repro import TAJ, TAJConfig, analyze, default_rules, extended_rules
from repro.modeling import prepare

APP = """
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("p"));
    resp.sendRedirect(req.getParameter("next"));
  }
}
"""


def test_analyze_convenience_wrapper():
    result = analyze([APP])
    assert result.issues == 1


def test_default_config_is_optimized():
    assert TAJ().config.name == "hybrid-optimized"


def test_rules_are_injectable():
    base = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources([APP])
    extended = TAJ(TAJConfig.hybrid_unbounded(),
                   rules=extended_rules()).analyze_sources([APP])
    assert base.issues == 1
    assert extended.issues == 2
    assert {i.rule for i in extended.report.issues} == \
        {"XSS", "OPEN_REDIRECT"}


def test_prepared_program_shared_across_configs():
    prepared = prepare([APP])
    a = TAJ(TAJConfig.hybrid_unbounded()).analyze_prepared(prepared)
    b = TAJ(TAJConfig.ci()).analyze_prepared(prepared)
    assert a.issues == b.issues == 1
    assert a.config_name != b.config_name


def test_result_carries_stats_and_times():
    result = analyze([APP])
    assert result.cg_nodes > 0
    assert result.cg_edges > 0
    assert "entrypoint_roots" in result.stats
    assert result.times.total > 0


def test_extra_entrypoints():
    library_only = """
class Plain {
  void handle(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("p"));
  }
}
class Driver {
  static void drive() {
    Plain p = new Plain();
    HttpServletRequest req = new HttpServletRequest();
    HttpServletResponse resp = new HttpServletResponse();
    p.handle(req, resp);
  }
}
"""
    result = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources(
        [library_only], extra_entrypoints=["Driver.drive/0"])
    assert result.issues == 1


def test_no_entrypoints_means_no_findings():
    result = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources(["""
class Orphan {
  void never(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("p"));
  }
}
"""])
    assert result.issues == 0


def test_flows_and_report_consistent():
    result = analyze([APP])
    assert result.raw_flows >= result.issues
    assert result.report.raw_flow_count == result.raw_flows
    by_rule = result.flows_by_rule()
    assert sum(len(v) for v in by_rule.values()) == result.raw_flows

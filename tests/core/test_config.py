"""Configuration preset tests (paper Table 1)."""

from repro import TAJConfig, settings_matrix
from repro.core import (DEFAULT_CG_NODE_BOUND, DEFAULT_FLOW_LENGTH_BOUND,
                        DEFAULT_NESTED_DEPTH)


def test_five_presets():
    names = [c.name for c in TAJConfig.all_presets()]
    assert names == ["hybrid-unbounded", "hybrid-prioritized",
                     "hybrid-optimized", "cs", "ci"]


def test_unbounded_has_no_bounds():
    config = TAJConfig.hybrid_unbounded()
    budget = config.budget
    assert budget.max_cg_nodes is None
    assert budget.max_heap_transitions is None
    assert budget.max_flow_length is None
    assert not config.prioritized
    assert not config.use_whitelist


def test_prioritized_bounds_call_graph_only():
    config = TAJConfig.hybrid_prioritized()
    assert config.prioritized
    assert config.budget.max_cg_nodes == DEFAULT_CG_NODE_BOUND
    assert config.budget.max_heap_transitions is None
    assert not config.use_whitelist


def test_optimized_enables_everything():
    config = TAJConfig.hybrid_optimized()
    assert config.prioritized
    assert config.use_whitelist
    budget = config.budget
    assert budget.max_cg_nodes == DEFAULT_CG_NODE_BOUND
    assert budget.max_heap_transitions is not None
    assert budget.max_flow_length == DEFAULT_FLOW_LENGTH_BOUND
    assert budget.max_nested_depth == DEFAULT_NESTED_DEPTH


def test_cs_uses_memory_budget():
    config = TAJConfig.cs()
    assert config.slicing == "cs"
    assert config.budget.max_state_units is not None


def test_ci_pairs_with_insensitive_pointers():
    config = TAJConfig.ci()
    assert config.slicing == "ci"
    assert config.context_insensitive_pointers


def test_with_budget_returns_modified_copy():
    config = TAJConfig.hybrid_unbounded()
    tweaked = config.with_budget(max_flow_length=7)
    assert tweaked.budget.max_flow_length == 7
    assert config.budget.max_flow_length is None
    assert tweaked is not config


def test_settings_matrix_renders_table1():
    text = settings_matrix()
    for name in ("hybrid-unbounded", "hybrid-prioritized",
                 "hybrid-optimized", "cs", "ci"):
        assert name in text


def test_preset_bounds_overridable():
    config = TAJConfig.hybrid_optimized(max_cg_nodes=10,
                                        max_flow_length=99)
    assert config.budget.max_cg_nodes == 10
    assert config.budget.max_flow_length == 99

"""Shared fixtures.

Expensive artifacts (modeled programs, analysis results) are
session-scoped: the underlying objects are never mutated by tests.
"""

from __future__ import annotations

import pytest

from repro import TAJ, TAJConfig
from repro.bench.micro import MOTIVATING
from repro.ir import Program, validate_program
from repro.lang import lower_source
from repro.modeling import prepare
from repro.ssa import program_to_ssa

MINI_LIB = """
library class Object { }
library class Exception {
  String message;
  String getMessage() { return this.message; }
}
"""


def lower_mini(source: str) -> Program:
    """Lower source against a minimal Object/Exception library."""
    return lower_source(MINI_LIB + source)


def lower_mini_ssa(source: str) -> Program:
    program = lower_mini(source)
    program_to_ssa(program)
    validate_program(program)
    return program


@pytest.fixture(scope="session")
def motivating_prepared():
    return prepare([MOTIVATING])


@pytest.fixture(scope="session")
def motivating_hybrid(motivating_prepared):
    return TAJ(TAJConfig.hybrid_unbounded()).analyze_prepared(
        motivating_prepared)


@pytest.fixture(scope="session")
def motivating_ci(motivating_prepared):
    return TAJ(TAJConfig.ci()).analyze_prepared(motivating_prepared)


@pytest.fixture(scope="session")
def motivating_cs(motivating_prepared):
    return TAJ(TAJConfig.cs()).analyze_prepared(motivating_prepared)

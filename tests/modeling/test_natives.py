"""Native-summary tests (paper §4.2.3)."""

from repro import TAJ, TAJConfig
from repro.modeling import NativeSummaries, default_natives
from repro.modeling.natives import returns_arg, returns_new


def analyze(source):
    return TAJ(TAJConfig.hybrid_unbounded()).analyze_sources([source])


def test_registry_handles():
    natives = default_natives()
    assert natives.handles("Thread.start")
    assert natives.handles("AccessController.doPrivileged")
    assert natives.handles("PortableRemoteObject.narrow")
    assert not natives.handles("No.suchMethod")


def test_custom_registration():
    natives = NativeSummaries()
    natives.register("A.b", returns_new("C"))
    assert natives.handles("A.b")


def test_get_session_returns_fresh_session():
    result = analyze("""
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    HttpSession s = req.getSession();
    s.setAttribute("k", req.getParameter("p"));
    resp.getWriter().println(s.getAttribute("k"));
  }
}""")
    assert result.issues == 1


def test_get_writer_plumbs_through_response_model():
    result = analyze("""
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    PrintWriter w = resp.getWriter();
    w.println(req.getParameter("p"));
  }
}""")
    assert result.issues == 1


def test_cookies_array_summary():
    result = analyze("""
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Cookie[] cs = req.getCookies();
    Cookie c = cs[0];
    resp.getWriter().println(c.getValue());
  }
}""")
    assert result.issues == 1


def test_thread_start_dispatches_run():
    result = analyze("""
class Task implements Runnable {
  HttpServletResponse resp;
  HttpServletRequest req;
  Task(HttpServletRequest q, HttpServletResponse r) {
    this.req = q;
    this.resp = r;
  }
  public void run() {
    this.resp.getWriter().println(this.req.getParameter("p"));
  }
}
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Thread t = new Thread(new Task(req, resp));
    t.start();
  }
}""")
    assert result.issues == 1


def test_do_privileged_dispatches_action_run():
    result = analyze("""
class Fetch implements PrivilegedAction {
  HttpServletRequest req;
  Fetch(HttpServletRequest r) { this.req = r; }
  public Object run() { return this.req.getParameter("p"); }
}
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Object v = AccessController.doPrivileged(new Fetch(req));
    resp.getWriter().println(v);
  }
}""")
    assert result.issues == 1


def test_narrow_returns_argument():
    result = analyze("""
class Box { String inner; Box(String v) { this.inner = v; } }
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Box b = new Box(req.getParameter("p"));
    Object o = PortableRemoteObject.narrow(b, "Whatever");
    resp.getWriter().println(o);
  }
}""")
    assert result.issues == 1  # carrier survives the narrow()


def test_jdbc_factories_produce_distinct_statements():
    result = analyze("""
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Connection c = DriverManager.getConnection("db");
    Statement st = c.createStatement();
    st.executeQuery("SELECT " + req.getParameter("p"));
  }
}""")
    assert result.issues == 1
    assert {i.rule for i in result.report.issues} == {"SQLI"}

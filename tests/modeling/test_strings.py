"""String-carrier rewrite tests (paper §4.2.1)."""

from repro.ir import Call, Const, New, StringOp
from repro.lang import lower_source
from repro.modeling import load_stdlib
from repro.modeling.strings import rewrite_method, rewrite_program


def build(source):
    program = load_stdlib()
    lower_source(source, program)
    rewrite_program(program)
    return program


def instrs(program, qname):
    return list(program.lookup_method(qname).instructions())


def strops(program, qname):
    return [i for i in instrs(program, qname) if isinstance(i, StringOp)]


def test_virtual_string_method_becomes_strop():
    program = build("""
class C {
  String m(String s) { return s.trim(); }
}""")
    ops = strops(program, "C.m/1")
    assert len(ops) == 1
    assert ops[0].method == "String.trim"
    assert ops[0].args[0] == "s"


def test_receiver_becomes_value_argument():
    program = build("""
class C {
  String m(String a, String b) { return a.concat(b); }
}""")
    op = strops(program, "C.m/2")[0]
    assert op.args == ["a", "b"]


def test_builder_new_and_ctor_rewritten():
    program = build("""
class C {
  String m() {
    StringBuilder sb = new StringBuilder();
    return sb.toString();
  }
}""")
    assert not [i for i in instrs(program, "C.m/0")
                if isinstance(i, New) and
                i.class_name == "StringBuilder"]


def test_builder_append_reassigns_receiver():
    program = build("""
class C {
  String m(String v) {
    StringBuilder sb = new StringBuilder();
    sb.append(v);
    return sb.toString();
  }
}""")
    ops = strops(program, "C.m/1")
    append = next(o for o in ops if o.method.endswith(".append"))
    tostr = next(o for o in ops if o.method.endswith(".toString"))
    # The append result must feed the final toString via the reassigned
    # receiver variable (checked after SSA in the integration suite; here
    # we check the local write-back exists).
    from repro.ir import Assign
    backs = [i for i in instrs(program, "C.m/1")
             if isinstance(i, Assign) and i.lhs == "sb"]
    assert backs, "mutator writes back to the receiver variable"


def test_static_valueof_rewritten():
    program = build("""
class C {
  String m(Object o) { return String.valueOf(o); }
}""")
    ops = strops(program, "C.m/1")
    assert ops and ops[0].method == "String.valueOf"


def test_non_string_calls_untouched():
    program = build("""
class D { D self() { return this; } }
class C {
  D m(D d) { return d.self(); }
}""")
    assert not strops(program, "C.m/1")
    calls = [i for i in instrs(program, "C.m/1") if isinstance(i, Call)]
    assert calls


def test_tostring_on_non_carrier_untouched():
    program = build("""
class D { public String toString() { return "d"; } }
class C {
  String m(D d) { return d.toString(); }
}""")
    assert not strops(program, "C.m/1")


def test_sanitizer_calls_stay_calls():
    """URLEncoder.encode is a static sanitizer on a non-carrier class:
    it must remain a Call for rule matching."""
    program = build("""
class C {
  String m(String s) { return URLEncoder.encode(s); }
}""")
    calls = [i for i in instrs(program, "C.m/1") if isinstance(i, Call)]
    assert any(c.method_name == "encode" for c in calls)


def test_rewrite_method_returns_count():
    program = load_stdlib()
    lower_source("""
class C {
  String m(String s) { return s.trim().toUpperCase(); }
}""", program)
    count = rewrite_method(program.lookup_method("C.m/1"))
    assert count == 2


def test_native_methods_skipped():
    program = load_stdlib()
    method = program.lookup_method("String.trim/0")
    assert rewrite_method(method) == 0

"""Whitelist code-reduction tests (paper §4.2.1)."""

from dataclasses import replace

from repro import TAJ, TAJConfig
from repro.modeling import (default_whitelist, load_stdlib, prepare,
                            validate_whitelist)

LOGGER_TRAP = """
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Logger.log(req.getParameter("p"));
  }
  void doPost(HttpServletRequest req, HttpServletResponse resp) {
    Logger.log("served");
    resp.getWriter().println(Logger.recent());
  }
}
"""


def test_default_whitelist_contents():
    names = default_whitelist()
    assert {"Logger", "Metrics", "Assertions"} <= names


def test_validate_whitelist_drops_application_classes():
    program = load_stdlib()
    from repro.lang import lower_source
    lower_source("class MyApp { }", program)
    cleaned = validate_whitelist(program, {"Logger", "MyApp", "Ghost"})
    assert "Logger" in cleaned
    assert "MyApp" not in cleaned        # app code may never be excluded
    assert "Ghost" in cleaned            # unknown names are harmless


def test_logger_conflation_without_whitelist():
    result = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources(
        [LOGGER_TRAP])
    assert result.issues == 1  # the Logger static-state conflation


def test_whitelist_removes_the_conflation():
    config = replace(TAJConfig.hybrid_unbounded(), use_whitelist=True)
    result = TAJ(config).analyze_sources([LOGGER_TRAP])
    assert result.issues == 0


def test_whitelist_reduces_call_graph():
    plain = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources(
        [LOGGER_TRAP])
    config = replace(TAJConfig.hybrid_unbounded(), use_whitelist=True)
    reduced = TAJ(config).analyze_sources([LOGGER_TRAP])
    assert reduced.cg_nodes < plain.cg_nodes


def test_whitelist_extra_only_accepts_library_classes():
    source = LOGGER_TRAP + """
class AppHelper {
  static String pass(String v) { return v; }
}
"""
    config = replace(TAJConfig.hybrid_unbounded(), use_whitelist=True,
                     whitelist_extra=frozenset({"AppHelper"}))
    result = TAJ(config).analyze_sources([source])
    # AppHelper is application code: the extra entry is ignored, so
    # flows through it would still be tracked.
    assert result.cg_nodes > 0

"""Reflection-resolution tests (paper §4.2.3)."""

from repro.ir import Call, New, Select
from repro.modeling import prepare, ModelOptions


def build(source):
    return prepare([source])


def method_instrs(prepared, qname):
    return list(prepared.program.lookup_method(qname).instructions())


def direct_calls(prepared, qname, name):
    return [i for i in method_instrs(prepared, qname)
            if isinstance(i, Call) and i.method_name == name]


def test_constant_forname_invoke_resolved():
    prepared = build("""
class Target {
  public String render(String v) { return v; }
}
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Target t = new Target();
    Class k = Class.forName("Target");
    Method m = k.getMethod("render");
    Object out = m.invoke(t, new Object[] { req.getParameter("p") });
  }
}""")
    assert prepared.stats["reflective_calls_resolved"] == 1
    assert direct_calls(prepared, "C.doGet/2", "render")
    assert not direct_calls(prepared, "C.doGet/2", "invoke")


def test_getmethods_loop_with_name_filter():
    prepared = build("""
class Target {
  public String wanted(String v) { return v; }
  public String other(String v) { return "x"; }
}
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Target t = new Target();
    Class k = Class.forName("Target");
    Method[] ms = k.getMethods();
    Method m = null;
    for (int i = 0; i < 4; i++) {
      Method cand = ms[i];
      if (cand.getName().equals("wanted")) { m = cand; break; }
    }
    Object out = m.invoke(t, new Object[] { req.getParameter("p") });
  }
}""")
    assert direct_calls(prepared, "C.doGet/2", "wanted")
    assert not direct_calls(prepared, "C.doGet/2", "other")


def test_unfiltered_invoke_calls_all_arity_matching_methods():
    prepared = build("""
class Target {
  public String a(String v) { return v; }
  public String b(String v) { return v; }
  public String two(String v, String w) { return v; }
}
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Target t = new Target();
    Class k = Class.forName("Target");
    Method[] ms = k.getMethods();
    Method m = ms[0];
    Object out = m.invoke(t, new Object[] { req.getParameter("p") });
  }
}""")
    assert direct_calls(prepared, "C.doGet/2", "a")
    assert direct_calls(prepared, "C.doGet/2", "b")
    # arity filter: the 1-element argument array excludes two/2
    assert not direct_calls(prepared, "C.doGet/2", "two")
    selects = [i for i in method_instrs(prepared, "C.doGet/2")
               if isinstance(i, Select)]
    assert selects, "results joined by a Select"


def test_newinstance_resolved_to_allocation():
    prepared = build("""
class Target {
  Target() { }
}
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Class k = Class.forName("Target");
    Object o = k.newInstance();
  }
}""")
    news = [i for i in method_instrs(prepared, "C.doGet/2")
            if isinstance(i, New) and i.class_name == "Target"]
    assert news


def test_nonconstant_forname_left_conservative():
    prepared = build("""
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Class k = Class.forName(req.getParameter("cls"));
    Object o = k.newInstance();
  }
}""")
    assert prepared.stats["reflective_calls_resolved"] == 0
    assert direct_calls(prepared, "C.doGet/2", "newInstance")


def test_unknown_class_name_left_conservative():
    prepared = build("""
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Class k = Class.forName("NoSuchClass");
    Object o = k.newInstance();
  }
}""")
    assert prepared.stats["reflective_calls_resolved"] == 0


def test_reflection_model_can_be_disabled():
    source = """
class Target {
  public String render(String v) { return v; }
}
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Target t = new Target();
    Class k = Class.forName("Target");
    Method m = k.getMethod("render");
    Object out = m.invoke(t, new Object[] { "x" });
  }
}"""
    prepared = prepare([source], options=ModelOptions(reflection=False))
    assert direct_calls(prepared, "C.doGet/2", "invoke")


def test_end_to_end_taint_through_reflection():
    from repro import TAJ, TAJConfig
    source = """
class Target {
  public String render(String v) { return v; }
}
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Target t = new Target();
    Class k = Class.forName("Target");
    Method m = k.getMethod("render");
    String out = (String) m.invoke(t,
        new Object[] { req.getParameter("p") });
    resp.getWriter().println(out);
  }
}"""
    result = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources([source])
    assert result.issues == 1

"""Constant-key dictionary model tests (paper §4.2.1)."""

from repro.ir import Call, Load, Select, Store
from repro.modeling import prepare, ModelOptions


def doget(prepared, cls="C"):
    return prepared.program.lookup_method(f"{cls}.doGet/2")


def build(body):
    source = f"""
class C extends HttpServlet {{
  void doGet(HttpServletRequest req, HttpServletResponse resp) {{
{body}
  }}
}}"""
    return prepare([source])


def test_constant_put_becomes_field_store():
    prepared = build("""
    HashMap m = new HashMap();
    m.put("key", req.getParameter("p"));""")
    stores = [i for i in doget(prepared).instructions()
              if isinstance(i, Store) and i.fld == "@key:key"]
    assert len(stores) == 1


def test_constant_get_reads_key_and_wildcard():
    prepared = build("""
    HashMap m = new HashMap();
    Object o = m.get("key");""")
    loads = [i for i in doget(prepared).instructions()
             if isinstance(i, Load) and i.fld.startswith("@key:")]
    fields = {l.fld for l in loads}
    assert fields == {"@key:key", "@key:?"}
    selects = [i for i in doget(prepared).instructions()
               if isinstance(i, Select)]
    assert len(selects) == 1


def test_unknown_key_put_uses_wildcard():
    prepared = build("""
    HashMap m = new HashMap();
    String k = req.getParameter("which");
    m.put(k, req.getParameter("p"));""")
    stores = [i for i in doget(prepared).instructions()
              if isinstance(i, Store) and i.fld == "@key:?"]
    assert stores


def test_unknown_key_get_selects_over_known_universe():
    prepared = build("""
    HashMap m = new HashMap();
    m.put("alpha", req.getParameter("a"));
    String k = req.getParameter("which");
    Object o = m.get(k);""")
    loads = {i.fld for i in doget(prepared).instructions()
             if isinstance(i, Load) and i.fld.startswith("@key:")}
    assert "@key:alpha" in loads and "@key:?" in loads


def test_session_attributes_modeled():
    prepared = build("""
    HttpSession s = req.getSession();
    s.setAttribute("a", req.getParameter("p"));
    Object o = s.getAttribute("a");""")
    stores = [i for i in doget(prepared).instructions()
              if isinstance(i, Store) and i.fld == "@key:a"]
    assert stores


def test_session_and_map_key_universes_are_separate():
    prepared = build("""
    HttpSession s = req.getSession();
    s.setAttribute("sessiononly", req.getParameter("p"));
    HashMap m = new HashMap();
    String k = req.getParameter("which");
    Object o = m.get(k);""")
    # The wildcard map get must not read the session-only key.
    loads = {i.fld for i in doget(prepared).instructions()
             if isinstance(i, Load)}
    assert "@key:sessiononly" not in loads


def test_no_rewrite_when_disabled():
    source = """
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    HashMap m = new HashMap();
    m.put("key", req.getParameter("p"));
  }
}"""
    options = ModelOptions(collections=False)
    prepared = prepare([source], options=options)
    calls = [i for i in doget(prepared).instructions()
             if isinstance(i, Call) and i.method_name == "put"]
    assert calls, "put remains a call into the real HashMap body"


def test_real_collection_bodies_still_flow_when_disabled():
    """Ablation: without the dictionary model, flow goes through the
    model library's real HashMap implementation."""
    from repro import TAJ, TAJConfig
    source = """
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    HashMap m = new HashMap();
    m.put("k", req.getParameter("p"));
    resp.getWriter().println(m.get("k"));
  }
}"""
    config = TAJConfig.hybrid_unbounded()
    config.models = ModelOptions(collections=False)
    result = TAJ(config).analyze_sources([source])
    assert result.issues >= 1


def test_collections_model_is_more_precise_than_real_bodies():
    """With the model, distinct constant keys never conflate; through
    the real bodies, a single map's entries may."""
    from repro import TAJ, TAJConfig
    source = """
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    HashMap m = new HashMap();
    m.put("dirty", req.getParameter("p"));
    m.put("clean", "safe");
    resp.getWriter().println(m.get("clean"));
  }
}"""
    modeled = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources([source])
    assert modeled.issues == 0
    config = TAJConfig.hybrid_unbounded()
    config.models = ModelOptions(collections=False)
    raw = TAJ(config).analyze_sources([source])
    assert raw.issues >= modeled.issues

"""Framework modeling tests: entrypoints, Struts, EJB (paper §4.2.2)."""

from repro import TAJ, TAJConfig
from repro.ir import Call, New
from repro.modeling import ModelOptions, prepare


def test_servlet_root_synthesized():
    prepared = prepare(["""
class MyServlet extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) { }
}"""])
    assert "$Root$MyServlet.dispatch/0" in prepared.program.entrypoints
    root = prepared.program.lookup_method("$Root$MyServlet.dispatch/0")
    assert root is not None and root.is_synthetic


def test_dopost_also_dispatched():
    prepared = prepare(["""
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) { }
  void doPost(HttpServletRequest req, HttpServletResponse resp) { }
}"""])
    root = prepared.program.lookup_method("$Root$S.dispatch/0")
    names = {i.method_name for i in root.instructions()
             if isinstance(i, Call)}
    assert {"doGet", "doPost"} <= names


def test_main_entrypoint_gets_tainted_args():
    prepared = prepare(["""
class Tool {
  static void main(String[] args) { }
}"""])
    assert any(e.startswith("$Root$ToolMain") for e in
               prepared.program.entrypoints)
    root = prepared.program.lookup_method("$Root$ToolMain.dispatch/0")
    sources = [i for i in root.instructions()
               if isinstance(i, Call) and i.method_name == "source"]
    assert sources


def test_struts_action_root_with_cast_constrained_form():
    prepared = prepare(["""
class UserForm extends ActionForm {
  String name;
}
class OtherForm extends ActionForm {
  String other;
}
class MyAction extends Action {
  ActionForward execute(ActionMapping mapping, ActionForm form,
                        HttpServletRequest req, HttpServletResponse resp) {
    UserForm f = (UserForm) form;
    return null;
  }
}"""])
    root = prepared.program.lookup_method("$Root$MyAction.dispatch/0")
    allocated = {i.class_name for i in root.instructions()
                 if isinstance(i, New)}
    assert "UserForm" in allocated
    assert "OtherForm" not in allocated  # cast constrains the form type


def test_struts_action_without_cast_gets_all_forms():
    prepared = prepare(["""
class FormA extends ActionForm { String a; }
class FormB extends ActionForm { String b; }
class AnyAction extends Action {
  ActionForward execute(ActionMapping mapping, ActionForm form,
                        HttpServletRequest req, HttpServletResponse resp) {
    return null;
  }
}"""])
    root = prepared.program.lookup_method("$Root$AnyAction.dispatch/0")
    allocated = {i.class_name for i in root.instructions()
                 if isinstance(i, New)}
    assert {"FormA", "FormB"} <= allocated


def test_struts_form_fields_tainted_recursively():
    source = """
class Address { String city; }
class NestedForm extends ActionForm {
  String name;
  Address address;
}
class NestedAction extends Action {
  ActionForward execute(ActionMapping mapping, ActionForm form,
                        HttpServletRequest req, HttpServletResponse resp) {
    NestedForm f = (NestedForm) form;
    resp.getWriter().println(f.address.city);
    return null;
  }
}"""
    result = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources([source])
    assert result.issues == 1  # nested field is tainted too


def test_ejb_lookup_resolved_via_descriptor():
    descriptor = {"java:comp/env/ejb/Thing": "ThingBean"}
    prepared = prepare(["""
class ThingBean {
  String poke(String v) { return v; }
}
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    InitialContext ctx = new InitialContext();
    Object ref = ctx.lookup("java:comp/env/ejb/Thing");
    Object home = PortableRemoteObject.narrow(ref, "ThingHome");
    ThingBean bean = (ThingBean) home.create();
    resp.getWriter().println(bean.poke(req.getParameter("p")));
  }
}"""], deployment_descriptor=descriptor)
    assert prepared.stats.get("ejb_calls_resolved") == 1
    assert prepared.program.get_class("$EJBHome$ThingBean") is not None


def test_ejb_without_descriptor_left_conservative():
    prepared = prepare(["""
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    InitialContext ctx = new InitialContext();
    Object ref = ctx.lookup("java:comp/env/ejb/Unknown");
  }
}"""], deployment_descriptor={"other": "X"})
    assert prepared.stats.get("ejb_calls_resolved") == 0


def test_exception_model_inserts_source_and_store():
    prepared = prepare(["""
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    try { int x = 1; } catch (Exception e) { int y = 2; }
  }
}"""])
    assert prepared.stats["exception_sources"] == 1
    method = prepared.program.lookup_method("S.doGet/2")
    calls = [i for i in method.instructions()
             if isinstance(i, Call) and i.method_name == "getMessage"]
    assert calls


def test_exception_model_skips_library_code():
    options = ModelOptions()
    prepared = prepare([], options=options)
    # The model library itself contains no synthetic exception sources.
    assert prepared.stats["exception_sources"] == 0


def test_frameworks_can_be_disabled():
    prepared = prepare(["""
class S extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) { }
}"""], options=ModelOptions(frameworks=False))
    assert not prepared.program.entrypoints
